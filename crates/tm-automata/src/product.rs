//! On-the-fly product exploration for inclusion checking.
//!
//! [`check_inclusion_compiled`](crate::check_inclusion_compiled) needs the
//! implementation automaton materialized up front (an [`crate::Nfa`]
//! compiled to CSR). For TM algorithms that is wasteful twice over: the
//! most-general-program NFA of TL2 at (2, 2) already has ~19k states and
//! every label is cloned into it, and the exploration pass and the product
//! BFS each hash the full state space once. The engine in this module
//! fuses the two passes: it explores `(implementation state, spec state)`
//! pairs **lazily**, pulling implementation successors from a
//! [`SuccessorSource`] — implemented by [`CompiledNfa`] (via
//! [`NfaSource`]) and directly by the TM steppers in `tm-algorithms` — so
//! the implementation transition system is only ever evaluated on the
//! product-reachable states and no `Nfa` is ever built.
//!
//! Two execution strategies sit behind one API:
//!
//! * **Sequential** (`threads <= 1`): a single FIFO product BFS with the
//!   exact discovery order of `check_inclusion_compiled` — identical
//!   verdicts, identical shortest counterexample words, identical
//!   `product_states`.
//! * **Parallel** (`threads > 1`): a level-synchronous BFS. Each frontier
//!   is sharded across an [`Executor`] — fresh scoped threads per region,
//!   or a persistent [`crate::WorkerPool`] when driven by a verification
//!   session; workers expand their chunks into per-`(chunk, stripe)`
//!   successor buffers against a read-only striped visited table (keyed
//!   by [`crate::FxHasher`] over packed `(impl, spec)` ids), and a dedup
//!   merge between levels — stripes processed in parallel, candidates
//!   consumed in discovery-tag order — builds the next frontier. Because
//!   every candidate carries its `(parent index, edge index)` tag and
//!   merges resolve ties by minimal tag, the explored set, the verdict,
//!   **and the counterexample word** are independent of the thread count
//!   and of the executor (the word matches the sequential engine's; only
//!   `product_states` of a violating run may differ, since the parallel
//!   engine finishes the violating level instead of stopping
//!   mid-edge-list).
//!
//! Successor rows are cached per implementation state on first touch
//! (letters and targets interned to `u32`), so each implementation state
//! is stepped exactly once no matter how many product pairs visit it —
//! the product inner loop is pure integer arithmetic after that.
//!
//! The thread count comes from the `TM_MODELCHECK_THREADS` environment
//! variable (see [`crate::modelcheck_threads`]); `TM_MODELCHECK_THREADS=1`
//! is the deterministic sequential fallback.

use std::hash::Hash;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

use tm_obs::{Histogram, Phase, PhaseTimer, Unit};

use crate::alphabet::{Alphabet, LetterId};
use crate::budget::{EngineError, QueryBudget};
use crate::compiled::{CompiledDfa, CompiledNfa, EPSILON, NO_STATE};
use crate::config::modelcheck_threads;
use crate::fxhash::{FxHashMap, FxHashSet};
use crate::inclusion::InclusionResult;
use crate::pool::Executor;

/// How many sequential BFS visits pass between deadline/cancellation
/// checks (the parallel engine checks per level instead, which is
/// naturally coarse).
const INTERRUPT_STRIDE: usize = 4096;

/// A lazily explorable implementation transition system: the input side
/// of [`check_inclusion_otf`].
///
/// Letters are ids over the *specification's* interned alphabet (plus
/// any extension for implementation-only letters): ids below the
/// specification alphabet length are specification letters, ids at or
/// beyond it can never be matched and are immediate violations, and
/// [`EPSILON`] marks internal steps. [`SuccessorSource::letter`] must
/// resolve every id the source emits (used only to materialize
/// counterexample words).
pub trait SuccessorSource: Sync {
    /// Implementation state type.
    type State: Clone + Eq + Hash + Send + Sync;
    /// Label type of counterexample words.
    type Label: Clone;

    /// Appends the initial states, in order.
    fn initial_states(&self, out: &mut Vec<Self::State>);

    /// Appends all transitions enabled in `state` as `(letter, successor)`
    /// pairs, in a fixed order ([`EPSILON`] for internal steps). The order
    /// defines BFS discovery order and hence counterexample identity.
    fn successors(&self, state: &Self::State, out: &mut Vec<(LetterId, Self::State)>);

    /// The label behind a letter id emitted by this source.
    fn letter(&self, id: LetterId) -> Self::Label;
}

/// [`SuccessorSource`] view of a [`CompiledNfa`] and the alphabet it was
/// compiled against: the bridge that lets already-materialized automata
/// run through the on-the-fly engine (used by the conformance tests and
/// as the reference adapter).
///
/// # Examples
///
/// ```
/// use tm_automata::{check_inclusion_otf_threads, Dfa, Nfa, NfaSource};
/// let mut imp = Nfa::new();
/// let s = imp.add_state();
/// imp.set_initial(s);
/// imp.add_transition(s, Some('a'), s);
/// imp.add_transition(s, Some('b'), s);
/// let mut spec = Dfa::new(vec!['a', 'b']);
/// let q = spec.add_state();
/// spec.set_initial(q);
/// spec.set_transition(q, &'a', q);
/// let compiled = spec.compile();
/// let mut alphabet = compiled.alphabet().clone();
/// let imp = imp.compile(&mut alphabet);
/// let source = NfaSource::new(&imp, &alphabet);
/// let result = check_inclusion_otf_threads(&source, &compiled, 1).unwrap();
/// assert_eq!(result.counterexample(), Some(&['b'][..]));
/// ```
pub struct NfaSource<'a, L> {
    nfa: &'a CompiledNfa,
    alphabet: &'a Alphabet<L>,
}

impl<'a, L> NfaSource<'a, L> {
    /// Wraps a compiled automaton and the alphabet its letter ids refer
    /// to. For inclusion checking against a [`CompiledDfa`], compile the
    /// automaton against a clone of the specification's alphabet so the
    /// ids agree (see the type-level example).
    pub fn new(nfa: &'a CompiledNfa, alphabet: &'a Alphabet<L>) -> Self {
        NfaSource { nfa, alphabet }
    }
}

impl<L: Clone + Sync> SuccessorSource for NfaSource<'_, L> {
    type State = u32;
    type Label = L;

    fn initial_states(&self, out: &mut Vec<u32>) {
        out.extend_from_slice(self.nfa.initial_states());
    }

    fn successors(&self, state: &u32, out: &mut Vec<(LetterId, u32)>) {
        let (letters, targets) = self.nfa.edges_from(*state);
        out.extend(letters.iter().copied().zip(targets.iter().copied()));
    }

    fn letter(&self, id: LetterId) -> L {
        self.alphabet.letter(id).clone()
    }
}

/// A lazily explorable *deterministic specification*: the spec-side
/// counterpart of [`SuccessorSource`], for instances whose specification
/// is too large to determinize eagerly (the (3,3)/(4,2) scaling cases,
/// where `DetSpec::to_dfa` — not the TM — is the wall).
///
/// Letter ids index the specification's alphabet in a fixed order that
/// the implementation source must agree on (build both from the same
/// letter list).
pub trait SpecSource {
    /// Structured specification state.
    type State: Clone + Eq + Hash;

    /// Number of specification letters; implementation letters at or
    /// beyond this are immediate violations.
    fn num_letters(&self) -> u32;

    /// The initial state.
    fn initial_state(&self) -> Self::State;

    /// The successor of `state` under `letter` (`letter <
    /// num_letters()`), or `None` (reject).
    fn step(&self, state: &Self::State, letter: LetterId) -> Option<Self::State>;
}

/// Blanket reference implementation so adapters that *own* their spec
/// source ([`DtsSpecSource`], [`SpecCache`]) can also borrow one.
impl<D: SpecSource + ?Sized> SpecSource for &D {
    type State = D::State;

    fn num_letters(&self) -> u32 {
        (**self).num_letters()
    }

    fn initial_state(&self) -> Self::State {
        (**self).initial_state()
    }

    fn step(&self, state: &Self::State, letter: LetterId) -> Option<Self::State> {
        (**self).step(state, letter)
    }
}

/// [`SpecSource`] over any [`crate::DeterministicTransitionSystem`] plus
/// an ordered letter list (letter ids are indices into it) — the adapter
/// that lets `tm_spec::DetSpec` run the specification side of the
/// product on the fly.
///
/// Owns its system, so a session can cache it alongside the interned
/// rows; pass `&system` (the trait is implemented for references) for the
/// borrowed one-shot use of the benches.
pub struct DtsSpecSource<T: crate::DeterministicTransitionSystem> {
    system: T,
    letters: Vec<T::Label>,
}

impl<T: crate::DeterministicTransitionSystem> DtsSpecSource<T> {
    /// Wraps `system` over `letters`; implementation sources must emit
    /// letter ids over the same list (in the same order).
    pub fn new(system: T, letters: Vec<T::Label>) -> Self {
        DtsSpecSource { system, letters }
    }

    /// The letter list, in id order.
    pub fn letters(&self) -> &[T::Label] {
        &self.letters
    }
}

impl<T: crate::DeterministicTransitionSystem> SpecSource for DtsSpecSource<T> {
    type State = T::State;

    fn num_letters(&self) -> u32 {
        self.letters.len() as u32
    }

    fn initial_state(&self) -> T::State {
        self.system.initial()
    }

    fn step(&self, state: &T::State, letter: LetterId) -> Option<T::State> {
        self.system.step(state, &self.letters[letter as usize])
    }
}

/// Checks `L(source) ⊆ L(spec)` with **both** sides explored on the fly:
/// implementation states stepped lazily as in [`check_inclusion_otf`],
/// and specification states interned and row-cached lazily from a
/// [`SpecSource`] — only the spec states the product actually reaches
/// are ever computed.
///
/// Sequential only (the deterministic engine): verdicts, counterexample
/// words and `product_states` are identical to
/// [`check_inclusion_otf_threads`]`(source, &eager_spec, 1)` whenever
/// the eager spec is buildable at all.
///
/// The interned spec states and letter rows are discarded when the call
/// returns; a session answering several queries against the same
/// specification should hold a [`SpecCache`] and call
/// [`check_inclusion_otf_cached`] instead.
///
/// # Errors
///
/// As for [`check_inclusion_otf_budget`] (with an unlimited budget, only
/// [`EngineError::FaultInjected`] is reachable).
pub fn check_inclusion_otf_lazy<S: SuccessorSource, D: SpecSource>(
    source: &S,
    spec: &D,
) -> Result<(InclusionResult<S::Label>, OtfStats), EngineError> {
    let mut cache = SpecCache::new(spec);
    check_inclusion_otf_cached(source, &mut cache, usize::MAX)
}

/// [`check_inclusion_otf_lazy`] against a persistent [`SpecCache`]: spec
/// states and letter rows interned by earlier queries are reused, so a
/// session checking many TMs against one specification pays each spec
/// row at most once across the whole session. Results are bit-identical
/// to the cold-cache run (spec state ids are internal; discovery order is
/// driven by the implementation side and letter order only).
///
/// # Errors
///
/// [`EngineError::StateLimit`] if the source reaches more than
/// `max_impl_states` distinct implementation states (already-interned
/// cache rows never count against a later query).
pub fn check_inclusion_otf_cached<S: SuccessorSource, D: SpecSource>(
    source: &S,
    cache: &mut SpecCache<D>,
    max_impl_states: usize,
) -> Result<(InclusionResult<S::Label>, OtfStats), EngineError> {
    check_inclusion_otf_cached_budget(source, cache, &QueryBudget::new(max_impl_states))
}

/// [`check_inclusion_otf_cached`] under a full [`QueryBudget`]: the state
/// bound covers fresh interns on both sides of the product, and the
/// deadline/cancellation is polled at BFS level boundaries and every
/// `INTERRUPT_STRIDE` product visits.
///
/// # Errors
///
/// [`EngineError::StateLimit`], [`EngineError::Deadline`], or
/// [`EngineError::Cancelled`] per the budget; the partially interned
/// cache rows stay valid for retries.
pub fn check_inclusion_otf_cached_budget<S: SuccessorSource, D: SpecSource>(
    source: &S,
    cache: &mut SpecCache<D>,
    budget: &QueryBudget,
) -> Result<(InclusionResult<S::Label>, OtfStats), EngineError> {
    sequential_bounded(source, cache, budget)
}

/// Statistics of an on-the-fly run, beyond the [`InclusionResult`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OtfStats {
    /// Distinct implementation states discovered. When inclusion holds
    /// this is the full reachable implementation state count (the paper's
    /// Table 2 "Size" column); on a violation it counts only the states
    /// explored before the check stopped.
    pub impl_states: usize,
    /// Number of BFS levels completed (edge depth of the exploration).
    pub levels: usize,
}

/// Checks `L(source) ⊆ L(spec)` on the fly, with the thread count of
/// [`modelcheck_threads`]. See the module docs for the guarantees of the
/// sequential and parallel engines.
///
/// # Errors
///
/// As for [`check_inclusion_otf_budget`].
pub fn check_inclusion_otf<S: SuccessorSource, M: Sync>(
    source: &S,
    spec: &CompiledDfa<M>,
) -> Result<InclusionResult<S::Label>, EngineError> {
    check_inclusion_otf_threads(source, spec, modelcheck_threads())
}

/// [`check_inclusion_otf`] with an explicit thread count (`1` selects the
/// sequential engine).
///
/// # Errors
///
/// As for [`check_inclusion_otf_budget`].
pub fn check_inclusion_otf_threads<S: SuccessorSource, M: Sync>(
    source: &S,
    spec: &CompiledDfa<M>,
    threads: usize,
) -> Result<InclusionResult<S::Label>, EngineError> {
    Ok(check_inclusion_otf_stats(source, spec, threads)?.0)
}

/// [`check_inclusion_otf_threads`] returning run statistics alongside the
/// result — the entry point `SafetyChecker` uses to report the TM state
/// count without a separate exploration pass.
///
/// # Errors
///
/// As for [`check_inclusion_otf_budget`].
pub fn check_inclusion_otf_stats<S: SuccessorSource, M: Sync>(
    source: &S,
    spec: &CompiledDfa<M>,
    threads: usize,
) -> Result<(InclusionResult<S::Label>, OtfStats), EngineError> {
    check_inclusion_otf_bounded(source, spec, threads, usize::MAX)
}

/// [`check_inclusion_otf_stats`] with a cap on discovered implementation
/// states — the blowup guard for rule-defined sources whose reachable
/// state space might be unexpectedly unbounded (what `SafetyChecker`
/// passes its `DEFAULT_MAX_STATES` through).
///
/// # Errors
///
/// [`EngineError::StateLimit`] if the source reaches more than
/// `max_impl_states` distinct implementation states.
pub fn check_inclusion_otf_bounded<S: SuccessorSource, M: Sync>(
    source: &S,
    spec: &CompiledDfa<M>,
    threads: usize,
    max_impl_states: usize,
) -> Result<(InclusionResult<S::Label>, OtfStats), EngineError> {
    check_inclusion_otf_executor(source, spec, &Executor::for_threads(threads), max_impl_states)
}

/// [`check_inclusion_otf_bounded`] with an explicit [`Executor`]: the
/// entry point of the `tm_checker::Verifier` session, whose persistent
/// [`crate::WorkerPool`] replaces the per-BFS-level scoped-thread spawns
/// of the bare `threads` entry points. Verdicts, counterexample words,
/// and statistics are identical under every executor; an executor of
/// width 1 selects the deterministic sequential engine.
///
/// # Errors
///
/// As for [`check_inclusion_otf_budget`].
pub fn check_inclusion_otf_executor<S: SuccessorSource, M: Sync>(
    source: &S,
    spec: &CompiledDfa<M>,
    executor: &Executor<'_>,
    max_impl_states: usize,
) -> Result<(InclusionResult<S::Label>, OtfStats), EngineError> {
    check_inclusion_otf_budget(source, spec, executor, &QueryBudget::new(max_impl_states))
}

/// The fully general product entry point: explicit [`Executor`] and
/// explicit [`QueryBudget`]. The sequential engine polls the budget at
/// BFS level boundaries and every `INTERRUPT_STRIDE` product visits;
/// the parallel engine polls it once per level (levels are the natural
/// synchronization points of the level-synchronous BFS). Aborts are
/// structured — no engine resource limit panics.
///
/// # Errors
///
/// * [`EngineError::StateLimit`] — the implementation (or lazily
///   interned specification) side outgrew `budget.max_states()`;
/// * [`EngineError::Deadline`] / [`EngineError::Cancelled`] — the budget
///   interrupted the exploration;
/// * [`EngineError::TaskPanicked`] — a parallel region task panicked;
/// * [`EngineError::FaultInjected`] — an armed [`crate::fault`] plan
///   fired (test/chaos builds only).
pub fn check_inclusion_otf_budget<S: SuccessorSource, M: Sync>(
    source: &S,
    spec: &CompiledDfa<M>,
    executor: &Executor<'_>,
    budget: &QueryBudget,
) -> Result<(InclusionResult<S::Label>, OtfStats), EngineError> {
    if executor.threads() <= 1 {
        sequential_bounded(source, CompiledSpec(spec), budget)
    } else {
        parallel(source, spec, executor, budget)
    }
}

/// Sequential-engine view of the specification side: the dense compiled
/// table, or a lazily interned [`SpecSource`]. (The parallel engine
/// steps the spec concurrently and therefore requires the compiled
/// form.)
trait SpecAccess {
    /// Number of specification letters.
    fn num_letters(&self) -> u32;
    /// The (interned) initial state. Fallible because a lazy access may
    /// intern against the budget.
    fn initial(&mut self, budget: &QueryBudget) -> Result<u32, EngineError>;
    /// Raw successor with the [`NO_STATE`] sentinel; `letter` is below
    /// [`SpecAccess::num_letters`]. Fallible for the same reason as
    /// [`SpecAccess::initial`].
    fn step(&mut self, state: u32, letter: LetterId, budget: &QueryBudget)
        -> Result<u32, EngineError>;
}

struct CompiledSpec<'a, M>(&'a CompiledDfa<M>);

impl<M> SpecAccess for CompiledSpec<'_, M> {
    #[inline]
    fn num_letters(&self) -> u32 {
        self.0.alphabet().len() as u32
    }

    #[inline]
    fn initial(&mut self, _budget: &QueryBudget) -> Result<u32, EngineError> {
        Ok(self.0.initial_state())
    }

    #[inline]
    fn step(
        &mut self,
        state: u32,
        letter: LetterId,
        _budget: &QueryBudget,
    ) -> Result<u32, EngineError> {
        Ok(self.0.step_raw(state, letter))
    }
}

/// The cached letter-row table of a [`SpecCache`] in serialization form:
/// `rows[id]` is spec state `id`'s full letter row, `None` if that state
/// was interned but never stepped.
pub type SpecRows = Vec<Option<Box<[u32]>>>;

/// Lazy interning cache over a [`SpecSource`]: spec states become dense
/// `u32` ids on first touch, and each touched state's full letter row is
/// computed once and cached, so repeated product visits are table
/// lookups.
///
/// The cache is the session-persistable artifact behind
/// [`check_inclusion_otf_cached`]: held across queries, it makes every
/// subsequent check against the same specification pay only for spec
/// states it is the *first* to touch. The underlying source is never
/// consulted twice for the same state.
pub struct SpecCache<D: SpecSource> {
    source: D,
    ids: FxHashMap<D::State, u32>,
    states: Vec<D::State>,
    rows: SpecRows,
}

impl<D: SpecSource> SpecCache<D> {
    /// Wraps a spec source with an empty cache. `source` may be a
    /// reference ([`SpecSource`] is implemented for `&D`) for one-shot
    /// use, or an owned adapter for session use.
    pub fn new(source: D) -> Self {
        SpecCache {
            source,
            ids: FxHashMap::default(),
            states: Vec::new(),
            rows: Vec::new(),
        }
    }

    /// The wrapped source.
    pub fn source(&self) -> &D {
        &self.source
    }

    /// Number of distinct specification states touched so far — the lazy
    /// counterpart of the eager spec's state count (what a session
    /// reports as `spec_states`).
    pub fn touched(&self) -> usize {
        self.states.len()
    }

    /// Number of letter rows fully computed so far (each is computed at
    /// most once across the cache's lifetime).
    pub fn rows_built(&self) -> usize {
        self.rows.iter().filter(|r| r.is_some()).count()
    }

    /// Estimated heap footprint in bytes of the cache's interned rows and
    /// state table (convention of [`crate::CompiledNfa::heap_bytes`]:
    /// container capacities, elements at inline size). The wrapped
    /// source is not counted — it is the cheap rule system the cache
    /// exists to avoid re-stepping, not a compiled artifact.
    pub fn heap_bytes(&self) -> usize {
        let rows: usize = self
            .rows
            .iter()
            .flatten()
            .map(|row| std::mem::size_of_val::<[u32]>(row))
            .sum();
        crate::fxhash::map_heap_bytes(&self.ids)
            + self.states.capacity() * std::mem::size_of::<D::State>()
            + self.rows.capacity() * std::mem::size_of::<Option<Box<[u32]>>>()
            + rows
    }

    /// Clones the interned state table and cached letter rows out of the
    /// cache — the serialization form used by the on-disk artifact store
    /// (`tm-store`). `states[id]` is the spec state behind id `id`;
    /// `rows[id]` is its cached full letter row (`None` if never
    /// stepped), entries indexing `states` with misses as
    /// [`crate::NO_STATE`].
    pub fn to_parts(&self) -> (Vec<D::State>, SpecRows) {
        (self.states.clone(), self.rows.clone())
    }

    /// Rebuilds a cache around `source` from [`SpecCache::to_parts`]
    /// output, verifying before trusting the data that the tables are
    /// parallel, states are distinct, the first interned state is the
    /// source's initial state, and every row has exactly one entry per
    /// letter pointing inside the state table. The cache is a pure memo
    /// of `source.step` — ids are dense renames of spec states — so a
    /// verified import can only change *when* rows are computed, never
    /// what any query answers.
    ///
    /// # Errors
    ///
    /// A static description of the first violated invariant.
    pub fn from_parts(
        source: D,
        states: Vec<D::State>,
        rows: SpecRows,
    ) -> Result<Self, &'static str> {
        if states.len() != rows.len() {
            return Err("state and row tables disagree in length");
        }
        if u32::try_from(states.len()).is_err() {
            return Err("more than u32::MAX spec states");
        }
        if let Some(first) = states.first() {
            if *first != source.initial_state() {
                return Err("first interned state is not the initial state");
            }
        }
        let num_letters = source.num_letters() as usize;
        for row in rows.iter().flatten() {
            if row.len() != num_letters {
                return Err("cached row has wrong letter count");
            }
            if row
                .iter()
                .any(|&id| id != NO_STATE && id as usize >= states.len())
            {
                return Err("cached row points outside the state table");
            }
        }
        let mut ids = FxHashMap::default();
        for (id, state) in states.iter().enumerate() {
            if ids.insert(state.clone(), id as u32).is_some() {
                return Err("duplicate interned state");
            }
        }
        Ok(SpecCache {
            source,
            ids,
            states,
            rows,
        })
    }

    /// Interns `state` against `budget`: specification blowups are the
    /// same structured [`EngineError::StateLimit`] abort as
    /// implementation ones — this is the check the (3,3)/(4,2) scaling
    /// cases rely on, where the *spec* side is the wall. Already-interned
    /// states from earlier queries are free.
    fn intern(&mut self, state: D::State, budget: &QueryBudget) -> Result<u32, EngineError> {
        if let Some(&id) = self.ids.get(&state) {
            return Ok(id);
        }
        budget.check_states(self.states.len())?;
        let id = u32::try_from(self.states.len()).expect("more than u32::MAX spec states");
        self.ids.insert(state.clone(), id);
        self.states.push(state);
        self.rows.push(None);
        Ok(id)
    }
}

impl<D: SpecSource> SpecAccess for &mut SpecCache<D> {
    fn num_letters(&self) -> u32 {
        self.source.num_letters()
    }

    fn initial(&mut self, budget: &QueryBudget) -> Result<u32, EngineError> {
        let init = self.source.initial_state();
        self.intern(init, budget)
    }

    fn step(
        &mut self,
        state: u32,
        letter: LetterId,
        budget: &QueryBudget,
    ) -> Result<u32, EngineError> {
        if self.rows[state as usize].is_none() {
            // Spans cover only the miss path (one per row ever built), so
            // the hot cache-hit lookup stays untimed.
            let _span = PhaseTimer::start(Phase::SpecIntern).with_value(1);
            let generated: Vec<Option<D::State>> = (0..self.source.num_letters())
                .map(|l| self.source.step(&self.states[state as usize], l))
                .collect();
            let mut row = Vec::with_capacity(generated.len());
            for succ in generated {
                row.push(match succ {
                    Some(s) => self.intern(s, budget)?,
                    None => NO_STATE,
                });
            }
            self.rows[state as usize] = Some(row.into_boxed_slice());
        }
        Ok(self.rows[state as usize].as_deref().expect("row cached")[letter as usize])
    }
}

/// Root marker in parent arrays.
const ROOT: u32 = u32::MAX;

/// Observes one BFS level's frontier size into the global
/// `tm_frontier_states` histogram (recorded per level by both engines).
fn observe_frontier(size: usize) {
    if !tm_obs::obs_enabled() {
        return;
    }
    static FRONTIER: OnceLock<Histogram> = OnceLock::new();
    FRONTIER
        .get_or_init(|| {
            tm_obs::global_histogram(
                "tm_frontier_states",
                "Frontier size entering each BFS level of the product engine",
                &[],
                Unit::None,
            )
        })
        .observe(size as u64);
}

/// Packs a product pair into the visited-set key.
#[inline]
fn pack(qi: u32, qs: u32) -> u64 {
    (qi as u64) << 32 | qs as u64
}

/// A cached successor row: `(letter, target id)` per edge, in source
/// order.
type Row = Box<[(LetterId, u32)]>;

/// Lazy implementation-side explorer: interns structured states to dense
/// `u32` ids and caches each state's successor row on first touch, so the
/// source is stepped exactly once per reachable state.
struct Explorer<'a, S: SuccessorSource> {
    source: &'a S,
    ids: FxHashMap<S::State, u32>,
    states: Vec<S::State>,
    rows: Vec<Option<Row>>,
    /// The query budget bounding distinct implementation states (the
    /// caller's declaration that the source was expected to be finite and
    /// bounded).
    budget: &'a QueryBudget,
}

impl<'a, S: SuccessorSource> Explorer<'a, S> {
    fn new(source: &'a S, budget: &'a QueryBudget) -> Self {
        Explorer {
            source,
            ids: FxHashMap::default(),
            states: Vec::new(),
            rows: Vec::new(),
            budget,
        }
    }

    fn intern(&mut self, state: S::State) -> Result<u32, EngineError> {
        if let Some(&id) = self.ids.get(&state) {
            return Ok(id);
        }
        self.budget.check_states(self.states.len())?;
        let id = u32::try_from(self.states.len()).expect("more than u32::MAX states");
        self.ids.insert(state.clone(), id);
        self.states.push(state);
        self.rows.push(None);
        Ok(id)
    }

    /// Interns an already-generated successor list as the row of `qi`.
    fn store_row(&mut self, qi: u32, generated: Vec<(LetterId, S::State)>) -> Result<(), EngineError> {
        let mut row = Vec::with_capacity(generated.len());
        for (letter, succ) in generated {
            row.push((letter, self.intern(succ)?));
        }
        self.rows[qi as usize] = Some(row.into_boxed_slice());
        Ok(())
    }

    /// Generates and caches the successor row of `qi` on first touch.
    fn ensure_row(&mut self, qi: u32) -> Result<(), EngineError> {
        if self.rows[qi as usize].is_some() {
            return Ok(());
        }
        let mut generated = Vec::new();
        self.source
            .successors(&self.states[qi as usize], &mut generated);
        self.store_row(qi, generated)
    }
}

/// The sequential engine: the exact FIFO product BFS of
/// `check_inclusion_compiled`, with the implementation side pulled
/// lazily. Identical discovery order, hence identical verdict, word, and
/// `product_states`.
fn sequential_bounded<S: SuccessorSource, P: SpecAccess>(
    source: &S,
    mut spec: P,
    budget: &QueryBudget,
) -> Result<(InclusionResult<S::Label>, OtfStats), EngineError> {
    let spec_letters = spec.num_letters();
    let mut ex = Explorer::new(source, budget);
    let mut visited: FxHashSet<u64> = FxHashSet::default();
    let mut queue: Vec<(u32, u32)> = Vec::new();
    let mut parent: Vec<(u32, LetterId)> = Vec::new();

    let spec0 = spec.initial(budget)?;
    let mut inits = Vec::new();
    source.initial_states(&mut inits);
    for state in inits {
        let qi = ex.intern(state)?;
        if visited.insert(pack(qi, spec0)) {
            queue.push((qi, spec0));
            parent.push((ROOT, EPSILON));
        }
    }

    let mut head = 0usize;
    let mut depth_mark = queue.len();
    let mut levels = 0usize;
    observe_frontier(depth_mark);
    let mut level_span = PhaseTimer::start(Phase::BfsLevel).with_value(depth_mark as u64);
    while head < queue.len() {
        if head == depth_mark {
            levels += 1;
            depth_mark = queue.len();
            // Close the finished level's span and open the next one.
            let frontier = depth_mark - head;
            observe_frontier(frontier);
            level_span.stop();
            level_span = PhaseTimer::start(Phase::BfsLevel).with_value(frontier as u64);
            budget.check_interrupt()?;
        } else if head.is_multiple_of(INTERRUPT_STRIDE) {
            // Wide levels still poll the deadline at a bounded stride.
            budget.check_interrupt()?;
        }
        let (qi, qs) = queue[head];
        ex.ensure_row(qi)?;
        let row = ex.rows[qi as usize].as_deref().expect("row ensured above");
        for &(letter, target) in row {
            let qs2 = if letter == EPSILON {
                qs
            } else if letter < spec_letters {
                match spec.step(qs, letter, budget)? {
                    NO_STATE => {
                        return Ok(sequential_violation(
                            source,
                            &parent,
                            head,
                            letter,
                            queue.len(),
                            ex.states.len(),
                            levels,
                        ))
                    }
                    next => next,
                }
            } else {
                return Ok(sequential_violation(
                    source,
                    &parent,
                    head,
                    letter,
                    queue.len(),
                    ex.states.len(),
                    levels,
                ));
            };
            if visited.insert(pack(target, qs2)) {
                queue.push((target, qs2));
                parent.push((head as u32, letter));
            }
        }
        head += 1;
    }
    level_span.stop();
    Ok((
        InclusionResult::Included {
            product_states: queue.len(),
        },
        OtfStats {
            impl_states: ex.states.len(),
            levels,
        },
    ))
}

/// Builds the violating return of the sequential engine.
fn sequential_violation<S: SuccessorSource>(
    source: &S,
    parent: &[(u32, LetterId)],
    head: usize,
    letter: LetterId,
    product_states: usize,
    impl_states: usize,
    levels: usize,
) -> (InclusionResult<S::Label>, OtfStats) {
    let word = reconstruct_queue(source, parent, head, letter);
    (
        InclusionResult::Counterexample {
            word,
            product_states,
        },
        OtfStats {
            impl_states,
            levels,
        },
    )
}

/// Reconstructs a violating word along queue parent pointers (sequential
/// engine).
fn reconstruct_queue<S: SuccessorSource>(
    source: &S,
    parent: &[(u32, LetterId)],
    mut at: usize,
    last_letter: LetterId,
) -> Vec<S::Label> {
    let mut word = vec![source.letter(last_letter)];
    loop {
        let (prev, letter) = parent[at];
        if prev == ROOT {
            break;
        }
        if letter != EPSILON {
            word.push(source.letter(letter));
        }
        at = prev as usize;
    }
    word.reverse();
    word
}

/// Number of stripes of the parallel visited table. A power of two well
/// above any sane thread count, so merge workers rarely share a cache
/// line and the stripe of a pair is a mask away from its hash.
const STRIPES: usize = 64;

/// Frontiers and per-level work lists smaller than this are processed
/// inline: three thread scopes per BFS level cost more than they save on
/// narrow levels.
const PAR_THRESHOLD: usize = 256;

/// A successor candidate produced by the generation phase: the discovery
/// tag `(parent frontier index << 32) | edge index` orders candidates
/// exactly as the sequential FIFO BFS would discover them.
#[derive(Clone, Copy)]
struct Candidate {
    tag: u64,
    target: u32,
    spec: u32,
    letter: LetterId,
}

/// Per-chunk output of the generation phase.
#[derive(Default)]
struct ChunkOut {
    /// Candidates bucketed by visited-table stripe, in tag order.
    stripes: Vec<Vec<Candidate>>,
    /// The minimal-tag violation seen in this chunk, if any.
    violation: Option<(u64, LetterId)>,
}

#[inline]
fn stripe_of(key: u64) -> usize {
    // Take the *high* bits of the hash: the stripe sets are themselves
    // FxHash tables probing on the low bits of this same hash, so a
    // low-bit stripe index would make every key within a stripe collide
    // on its probe-start bucket. FxHash's final multiply mixes the high
    // bits best anyway.
    use std::hash::Hasher;
    let mut hasher = crate::fxhash::FxHasher::default();
    hasher.write_u64(key);
    (hasher.finish() >> (64 - STRIPES.trailing_zeros())) as usize
}

/// The parallel engine: deterministic level-synchronous BFS (see module
/// docs). Results are independent of the executor and its width.
fn parallel<S: SuccessorSource, M: Sync>(
    source: &S,
    spec: &CompiledDfa<M>,
    executor: &Executor<'_>,
    budget: &QueryBudget,
) -> Result<(InclusionResult<S::Label>, OtfStats), EngineError> {
    let spec_letters = spec.alphabet().len() as u32;
    let mut ex = Explorer::new(source, budget);
    let mut visited: Vec<FxHashSet<u64>> = (0..STRIPES).map(|_| FxHashSet::default()).collect();

    // Level 0: distinct initial pairs in order.
    let spec0 = spec.initial_state();
    let mut inits = Vec::new();
    source.initial_states(&mut inits);
    let mut frontier: Vec<(u32, u32)> = Vec::new();
    for state in inits {
        let qi = ex.intern(state)?;
        let key = pack(qi, spec0);
        if visited[stripe_of(key)].insert(key) {
            frontier.push((qi, spec0));
        }
    }
    // Parent arrays per level, for counterexample reconstruction.
    let mut parents: Vec<Vec<(u32, LetterId)>> = vec![vec![(ROOT, EPSILON); frontier.len()]];
    let mut total = frontier.len();
    let mut levels = 0usize;

    while !frontier.is_empty() {
        // Levels are the natural synchronization points of this engine:
        // one budget poll per level bounds abort latency by the cost of a
        // single level expansion.
        budget.check_interrupt()?;
        observe_frontier(frontier.len());
        let level_span = PhaseTimer::start(Phase::BfsLevel).with_value(frontier.len() as u64);

        // Phase 1: generate successor rows for first-touched states, in
        // frontier order (sharded; interned sequentially for determinism).
        ensure_rows(&mut ex, &frontier, executor)?;

        // Phase 2: expand the frontier into per-(chunk, stripe) candidate
        // buffers against the read-only visited table. Pure integers.
        let mut chunk_outs =
            expand_frontier(&ex, spec, spec_letters, &visited, &frontier, executor)?;
        level_span.stop();

        // A violation anywhere in this level beats all deeper ones; the
        // minimal tag reproduces the sequential engine's word.
        let violation = chunk_outs
            .iter()
            .filter_map(|c| c.violation)
            .min_by_key(|&(tag, _)| tag);
        if let Some((tag, letter)) = violation {
            let word = reconstruct_levels(source, &parents, (tag >> 32) as u32, letter);
            return Ok((
                InclusionResult::Counterexample {
                    word,
                    product_states: total,
                },
                OtfStats {
                    impl_states: ex.states.len(),
                    levels,
                },
            ));
        }

        // Phase 3: dedup merge, stripe-parallel, candidates consumed in
        // tag order (chunk ranges are ascending, buffers are in-order).
        let mut merge_span = PhaseTimer::start(Phase::DedupMerge);
        let nodes = merge_level(&mut visited, &mut chunk_outs, executor)?;
        merge_span.set_value(nodes.len() as u64);
        merge_span.stop();

        frontier.clear();
        let mut level_parents = Vec::with_capacity(nodes.len());
        for node in &nodes {
            frontier.push((node.target, node.spec));
            level_parents.push(((node.tag >> 32) as u32, node.letter));
        }
        parents.push(level_parents);
        total += nodes.len();
        if !frontier.is_empty() {
            // Matches the sequential engine's count: a final expansion
            // that discovers nothing is not a new level.
            levels += 1;
        }
    }

    Ok((
        InclusionResult::Included {
            product_states: total,
        },
        OtfStats {
            impl_states: ex.states.len(),
            levels,
        },
    ))
}

/// Generates (in parallel) and interns (sequentially, in frontier order)
/// the successor rows of every frontier state missing one.
fn ensure_rows<S: SuccessorSource>(
    ex: &mut Explorer<'_, S>,
    frontier: &[(u32, u32)],
    executor: &Executor<'_>,
) -> Result<(), EngineError> {
    let mut missing: Vec<u32> = Vec::new();
    let mut queued = FxHashSet::default();
    for &(qi, _) in frontier {
        if ex.rows[qi as usize].is_none() && queued.insert(qi) {
            missing.push(qi);
        }
    }
    if missing.is_empty() {
        return Ok(());
    }
    let threads = executor.threads();
    let mut generated: Vec<Vec<(LetterId, S::State)>> = vec![Vec::new(); missing.len()];
    if missing.len() < PAR_THRESHOLD || threads <= 1 {
        for (slot, &qi) in generated.iter_mut().zip(&missing) {
            ex.source.successors(&ex.states[qi as usize], slot);
        }
    } else {
        let chunk = missing.len().div_ceil(threads);
        let source = ex.source;
        let states = &ex.states;
        executor.try_scope(|scope| {
            for (slots, ids) in generated.chunks_mut(chunk).zip(missing.chunks(chunk)) {
                scope.spawn(move || {
                    for (slot, &qi) in slots.iter_mut().zip(ids) {
                        source.successors(&states[qi as usize], slot);
                    }
                });
            }
        })?;
    }
    for (qi, row) in missing.into_iter().zip(generated) {
        ex.store_row(qi, row)?;
    }
    Ok(())
}

/// Expands the frontier into per-chunk candidate buffers (chunks are
/// contiguous ascending frontier ranges, so candidate tags come out
/// ordered per chunk).
fn expand_frontier<S: SuccessorSource, M: Sync>(
    ex: &Explorer<'_, S>,
    spec: &CompiledDfa<M>,
    spec_letters: u32,
    visited: &[FxHashSet<u64>],
    frontier: &[(u32, u32)],
    executor: &Executor<'_>,
) -> Result<Vec<ChunkOut>, EngineError> {
    let threads = executor.threads();
    let chunk = frontier.len().div_ceil(threads).max(1);
    let starts: Vec<usize> = (0..frontier.len()).step_by(chunk).collect();
    let mut outs: Vec<ChunkOut> = (0..starts.len()).map(|_| ChunkOut::default()).collect();
    // Cross-worker early exit: the minimal violation tag seen so far.
    // Nodes whose tags can only exceed it cannot improve the result.
    let min_violation = AtomicU64::new(u64::MAX);

    let expand_chunk = |out: &mut ChunkOut, start: usize| {
        out.stripes = (0..STRIPES).map(|_| Vec::new()).collect();
        let end = (start + chunk).min(frontier.len());
        for (offset, &(qi, qs)) in frontier[start..end].iter().enumerate() {
            let index = (start + offset) as u64;
            if min_violation.load(Ordering::Relaxed) < index << 32 {
                break; // a shallower violation already wins
            }
            let row = ex.rows[qi as usize].as_deref().expect("rows ensured");
            for (edge, &(letter, target)) in row.iter().enumerate() {
                let tag = index << 32 | edge as u64;
                let qs2 = if letter == EPSILON {
                    qs
                } else if letter < spec_letters {
                    match spec.step_raw(qs, letter) {
                        NO_STATE => {
                            record_violation(out, &min_violation, tag, letter);
                            break;
                        }
                        next => next,
                    }
                } else {
                    record_violation(out, &min_violation, tag, letter);
                    break;
                };
                let key = pack(target, qs2);
                let stripe = stripe_of(key);
                if !visited[stripe].contains(&key) {
                    out.stripes[stripe].push(Candidate {
                        tag,
                        target,
                        spec: qs2,
                        letter,
                    });
                }
            }
            if out.violation.is_some() {
                break; // later nodes of this chunk only have larger tags
            }
        }
    };

    if frontier.len() < PAR_THRESHOLD || threads <= 1 {
        for (out, &start) in outs.iter_mut().zip(&starts) {
            expand_chunk(out, start);
        }
    } else {
        let expand_chunk = &expand_chunk;
        executor.try_scope(|scope| {
            for (out, &start) in outs.iter_mut().zip(&starts) {
                scope.spawn(move || expand_chunk(out, start));
            }
        })?;
    }
    Ok(outs)
}

fn record_violation(out: &mut ChunkOut, min_violation: &AtomicU64, tag: u64, letter: LetterId) {
    if out.violation.is_none() {
        out.violation = Some((tag, letter));
        min_violation.fetch_min(tag, Ordering::Relaxed);
    }
}

/// Dedup merge between levels: inserts candidates into the striped
/// visited table (stripes processed in parallel, candidates in tag order,
/// first occurrence wins) and returns the accepted nodes sorted by tag —
/// the next frontier in sequential discovery order.
fn merge_level(
    visited: &mut [FxHashSet<u64>],
    chunk_outs: &mut [ChunkOut],
    executor: &Executor<'_>,
) -> Result<Vec<Candidate>, EngineError> {
    let threads = executor.threads();
    // Regroup buffers by stripe (pointer moves only).
    let mut by_stripe: Vec<Vec<Vec<Candidate>>> = (0..STRIPES).map(|_| Vec::new()).collect();
    for out in chunk_outs.iter_mut() {
        for (stripe, buf) in out.stripes.drain(..).enumerate() {
            if !buf.is_empty() {
                by_stripe[stripe].push(buf);
            }
        }
    }
    let candidates: usize = by_stripe
        .iter()
        .flat_map(|bufs| bufs.iter().map(Vec::len))
        .sum();
    let mut accepted: Vec<Vec<Candidate>> = (0..STRIPES).map(|_| Vec::new()).collect();
    let merge_stripe = |set: &mut FxHashSet<u64>, bufs: &mut Vec<Vec<Candidate>>, out: &mut Vec<Candidate>| {
        for buf in bufs.drain(..) {
            for cand in buf {
                if set.insert(pack(cand.target, cand.spec)) {
                    out.push(cand);
                }
            }
        }
    };
    if candidates < PAR_THRESHOLD || threads <= 1 {
        for ((set, bufs), out) in visited.iter_mut().zip(&mut by_stripe).zip(&mut accepted) {
            merge_stripe(set, bufs, out);
        }
    } else {
        let per = STRIPES.div_ceil(threads);
        executor.try_scope(|scope| {
            for ((sets, bufs), outs) in visited
                .chunks_mut(per)
                .zip(by_stripe.chunks_mut(per))
                .zip(accepted.chunks_mut(per))
            {
                scope.spawn(move || {
                    for ((set, buf), out) in sets.iter_mut().zip(bufs).zip(outs) {
                        merge_stripe(set, buf, out);
                    }
                });
            }
        })?;
    }
    let mut nodes: Vec<Candidate> = accepted.into_iter().flatten().collect();
    nodes.sort_unstable_by_key(|c| c.tag);
    Ok(nodes)
}

/// Reconstructs a violating word along per-level parent arrays (parallel
/// engine). `at` indexes the current frontier (the last entry of
/// `parents`).
fn reconstruct_levels<S: SuccessorSource>(
    source: &S,
    parents: &[Vec<(u32, LetterId)>],
    at: u32,
    last_letter: LetterId,
) -> Vec<S::Label> {
    let mut word = vec![source.letter(last_letter)];
    let mut level = parents.len() - 1;
    let mut index = at as usize;
    loop {
        let (prev, letter) = parents[level][index];
        if prev == ROOT {
            break;
        }
        if letter != EPSILON {
            word.push(source.letter(letter));
        }
        index = prev as usize;
        level -= 1;
    }
    word.reverse();
    word
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dfa::Dfa;
    use crate::inclusion::check_inclusion_compiled;
    use crate::nfa::Nfa;

    fn compile_pair(nfa: &Nfa<char>, spec: &CompiledDfa<char>) -> (CompiledNfa, Alphabet<char>) {
        let mut alphabet = spec.alphabet().clone();
        let imp = CompiledNfa::compile(nfa, &mut alphabet);
        (imp, alphabet)
    }

    fn letter_nfa(letters: &[char]) -> Nfa<char> {
        let mut nfa = Nfa::new();
        let s = nfa.add_state();
        nfa.set_initial(s);
        for &l in letters {
            nfa.add_transition(s, Some(l), s);
        }
        nfa
    }

    fn letter_dfa(letters: &[char]) -> Dfa<char> {
        let mut dfa = Dfa::new(letters.to_vec());
        let q = dfa.add_state();
        dfa.set_initial(q);
        for l in letters {
            dfa.set_transition(q, l, q);
        }
        dfa
    }

    /// A chain with branching and ε-moves, long enough to have several
    /// BFS levels.
    fn chain_nfa(n: usize) -> Nfa<char> {
        let mut nfa = Nfa::new();
        let states: Vec<_> = (0..n).map(|_| nfa.add_state()).collect();
        nfa.set_initial(states[0]);
        for i in 0..n - 1 {
            nfa.add_transition(states[i], Some('a'), states[i + 1]);
            if i % 3 == 0 {
                nfa.add_transition(states[i], None, states[(i + 2).min(n - 1)]);
            }
            if i % 4 == 1 {
                nfa.add_transition(states[i], Some('b'), states[i]);
            }
        }
        nfa.add_transition(states[n - 1], Some('c'), states[n - 1]);
        nfa
    }

    #[test]
    fn otf_matches_compiled_on_examples() {
        let cases: Vec<(Nfa<char>, Dfa<char>)> = vec![
            (letter_nfa(&['a']), letter_dfa(&['a', 'b'])),
            (letter_nfa(&['a', 'b']), letter_dfa(&['a'])),
            (letter_nfa(&['z']), letter_dfa(&['a'])),
            (chain_nfa(12), letter_dfa(&['a', 'b'])),
            (chain_nfa(12), letter_dfa(&['a', 'b', 'c'])),
        ];
        for (nfa, dfa) in &cases {
            let spec = dfa.compile();
            let expected = check_inclusion_compiled(nfa, &spec);
            let (imp, alphabet) = compile_pair(nfa, &spec);
            let source = NfaSource::new(&imp, &alphabet);
            for threads in [1, 2, 5] {
                let got = check_inclusion_otf_threads(&source, &spec, threads).unwrap();
                assert_eq!(got.holds(), expected.holds(), "threads={threads}");
                assert_eq!(
                    got.counterexample(),
                    expected.counterexample(),
                    "threads={threads}"
                );
                if expected.holds() {
                    assert_eq!(got.product_states(), expected.product_states());
                }
            }
        }
    }

    #[test]
    fn sequential_otf_has_exact_parity() {
        let nfa = chain_nfa(9);
        let spec = letter_dfa(&['a', 'b']).compile();
        let expected = check_inclusion_compiled(&nfa, &spec);
        let (imp, alphabet) = compile_pair(&nfa, &spec);
        let source = NfaSource::new(&imp, &alphabet);
        let got = check_inclusion_otf_threads(&source, &spec, 1).unwrap();
        assert_eq!(got, expected); // verdict, word, and product_states
    }

    #[test]
    fn stats_report_impl_states() {
        let nfa = chain_nfa(10);
        let spec = letter_dfa(&['a', 'b', 'c']).compile();
        let (imp, alphabet) = compile_pair(&nfa, &spec);
        let source = NfaSource::new(&imp, &alphabet);
        let (_, sequential_stats) = check_inclusion_otf_stats(&source, &spec, 1).unwrap();
        assert_eq!(sequential_stats.impl_states, nfa.num_states());
        assert!(sequential_stats.levels > 0);
        for threads in [2, 3] {
            let (result, stats) = check_inclusion_otf_stats(&source, &spec, threads).unwrap();
            assert!(result.holds());
            // Stats — including the level count — are engine-independent.
            assert_eq!(stats, sequential_stats, "threads={threads}");
        }
    }

    #[test]
    fn bounded_engine_rejects_state_blowup_structurally() {
        let nfa = chain_nfa(10);
        let spec = letter_dfa(&['a', 'b', 'c']).compile();
        let (imp, alphabet) = compile_pair(&nfa, &spec);
        let source = NfaSource::new(&imp, &alphabet);
        // Both engines return the structured abort, never panic.
        for threads in [1, 4] {
            assert_eq!(
                check_inclusion_otf_bounded(&source, &spec, threads, 4).err(),
                Some(EngineError::StateLimit(4)),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn expired_budget_aborts_both_engines() {
        let nfa = chain_nfa(10);
        let spec = letter_dfa(&['a', 'b', 'c']).compile();
        let (imp, alphabet) = compile_pair(&nfa, &spec);
        let source = NfaSource::new(&imp, &alphabet);
        let expired = QueryBudget::unlimited().with_timeout(std::time::Duration::ZERO);
        let token = crate::CancelToken::new();
        token.cancel();
        let cancelled = QueryBudget::unlimited().with_cancel(token);
        for threads in [1, 4] {
            let executor = Executor::for_threads(threads);
            assert_eq!(
                check_inclusion_otf_budget(&source, &spec, &executor, &expired).err(),
                Some(EngineError::Deadline),
                "threads={threads}"
            );
            assert_eq!(
                check_inclusion_otf_budget(&source, &spec, &executor, &cancelled).err(),
                Some(EngineError::Cancelled),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn lazy_spec_blowup_is_a_structured_error() {
        // An infinite spec state space: the budget trips on *spec*
        // interning even though the implementation is a single state.
        struct Unbounded;
        impl SpecSource for Unbounded {
            type State = u64;
            fn num_letters(&self) -> u32 {
                1
            }
            fn initial_state(&self) -> u64 {
                0
            }
            fn step(&self, state: &u64, _letter: LetterId) -> Option<u64> {
                Some(state + 1)
            }
        }
        let nfa = letter_nfa(&['a']);
        let mut alphabet = Alphabet::new();
        alphabet.intern(&'a');
        let imp = CompiledNfa::compile(&nfa, &mut alphabet);
        let source = NfaSource::new(&imp, &alphabet);
        let mut cache = SpecCache::new(Unbounded);
        assert_eq!(
            check_inclusion_otf_cached(&source, &mut cache, 8).err(),
            Some(EngineError::StateLimit(8))
        );
    }

    #[test]
    fn parallel_counterexample_is_thread_count_independent() {
        // Violation deep in the chain: 'c' is missing from the spec.
        let nfa = chain_nfa(14);
        let spec = letter_dfa(&['a', 'b']).compile();
        let (imp, alphabet) = compile_pair(&nfa, &spec);
        let source = NfaSource::new(&imp, &alphabet);
        let words: Vec<_> = [1usize, 2, 3, 8]
            .iter()
            .map(|&t| {
                check_inclusion_otf_threads(&source, &spec, t)
                    .unwrap()
                    .counterexample()
                    .expect("must violate")
                    .to_vec()
            })
            .collect();
        for w in &words[1..] {
            assert_eq!(w, &words[0]);
        }
    }

    #[test]
    fn lazy_spec_matches_compiled_spec() {
        // Parity system: 'f' flips, 'z' only when even — as a lazy
        // SpecSource vs its eagerly explored compiled DFA.
        struct Parity;
        impl crate::DeterministicTransitionSystem for Parity {
            type State = bool;
            type Label = char;
            fn initial(&self) -> bool {
                false
            }
            fn step(&self, state: &bool, letter: &char) -> Option<bool> {
                match letter {
                    'f' => Some(!state),
                    'z' if !state => Some(*state),
                    _ => None,
                }
            }
        }
        let (dfa, _) = crate::explore_deterministic(&Parity, vec!['f', 'z'], 10).unwrap();
        let spec = dfa.compile();
        for nfa in [
            letter_nfa(&['f']),
            letter_nfa(&['f', 'z']),
            letter_nfa(&['z']),
            chain_nfa(7),
        ] {
            let (imp, alphabet) = compile_pair(&nfa, &spec);
            let source = NfaSource::new(&imp, &alphabet);
            let eager = check_inclusion_otf_stats(&source, &spec, 1).unwrap();
            let lazy_spec = DtsSpecSource::new(&Parity, vec!['f', 'z']);
            let lazy = check_inclusion_otf_lazy(&source, &lazy_spec).unwrap();
            assert_eq!(lazy.0, eager.0);
            assert_eq!(lazy.1, eager.1);
        }
    }

    #[test]
    fn env_thread_count_parses() {
        // Only exercises the default path (the variable is not set by
        // the test harness); the CI matrix covers explicit values.
        assert!(modelcheck_threads() >= 1);
    }

    #[test]
    fn pool_executor_matches_scoped_and_sequential() {
        let pool = crate::WorkerPool::new(3);
        // One verified and one violating case, under every executor.
        for dfa_letters in [&['a', 'b', 'c'][..], &['a', 'b'][..]] {
            let nfa = chain_nfa(14);
            let spec = letter_dfa(dfa_letters).compile();
            let (imp, alphabet) = compile_pair(&nfa, &spec);
            let source = NfaSource::new(&imp, &alphabet);
            let (expected, expected_stats) = check_inclusion_otf_stats(&source, &spec, 1).unwrap();
            for executor in [
                Executor::Sequential,
                Executor::Scoped { threads: 3 },
                Executor::Pool(&pool),
            ] {
                let (got, stats) =
                    check_inclusion_otf_executor(&source, &spec, &executor, usize::MAX).unwrap();
                assert_eq!(got.holds(), expected.holds(), "{executor:?}");
                assert_eq!(got.counterexample(), expected.counterexample(), "{executor:?}");
                if expected.holds() {
                    assert_eq!(got.product_states(), expected.product_states(), "{executor:?}");
                    assert_eq!(stats, expected_stats, "{executor:?}");
                }
            }
        }
    }

    #[test]
    fn warm_spec_cache_runs_are_bit_identical() {
        struct Parity;
        impl crate::DeterministicTransitionSystem for Parity {
            type State = bool;
            type Label = char;
            fn initial(&self) -> bool {
                false
            }
            fn step(&self, state: &bool, letter: &char) -> Option<bool> {
                match letter {
                    'f' => Some(!state),
                    'z' if !state => Some(*state),
                    _ => None,
                }
            }
        }
        let lazy_spec = DtsSpecSource::new(Parity, vec!['f', 'z']);
        let mut cache = SpecCache::new(&lazy_spec);
        let cases = [
            letter_nfa(&['f']),
            letter_nfa(&['f', 'z']),
            letter_nfa(&['z']),
            chain_nfa(7),
        ];
        let spec_dfa = crate::explore_deterministic(&Parity, vec!['f', 'z'], 10).unwrap().0;
        let compiled = spec_dfa.compile();
        // First pass populates the cache; the second answers from it. All
        // reported fields must match the cold (per-call) lazy path.
        for pass in 0..2 {
            let rows_before = cache.rows_built();
            for nfa in &cases {
                let (imp, alphabet) = compile_pair(nfa, &compiled);
                let source = NfaSource::new(&imp, &alphabet);
                let cold = check_inclusion_otf_lazy(&source, &lazy_spec).unwrap();
                let warm = check_inclusion_otf_cached(&source, &mut cache, usize::MAX).unwrap();
                assert_eq!(warm.0, cold.0, "pass {pass}");
                assert_eq!(warm.1, cold.1, "pass {pass}");
            }
            if pass == 1 {
                // Nothing new to intern on the warm pass.
                assert_eq!(cache.rows_built(), rows_before);
            }
        }
        assert_eq!(cache.touched(), 2); // both parity states reached
    }

    #[test]
    fn spec_cache_heap_bytes_grow_with_interned_rows() {
        struct Counter;
        impl SpecSource for Counter {
            type State = u64;
            fn num_letters(&self) -> u32 {
                4
            }
            fn initial_state(&self) -> u64 {
                0
            }
            fn step(&self, state: &u64, letter: LetterId) -> Option<u64> {
                (*state < 50).then_some(state * 4 + letter as u64)
            }
        }
        let mut cache = SpecCache::new(Counter);
        let empty = cache.heap_bytes();
        let unlimited = QueryBudget::unlimited();
        // Walk a few states, forcing their full letter rows.
        let mut access: &mut SpecCache<Counter> = &mut cache;
        let mut q = access.initial(&unlimited).unwrap();
        for letter in [0, 1, 2, 3] {
            q = access.step(q, letter, &unlimited).unwrap();
        }
        let _ = access.step(q, 0, &unlimited).unwrap();
        let warm = cache.heap_bytes();
        // Every fully computed row is a boxed `[u32; num_letters]`; the
        // state table and interner grew alongside.
        let floor = cache.rows_built() * 4 * std::mem::size_of::<u32>()
            + cache.touched() * std::mem::size_of::<u64>();
        assert!(warm >= empty + floor, "{empty} -> {warm}, floor {floor}");
    }
}
