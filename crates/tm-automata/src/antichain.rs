//! Antichain-based language inclusion between two nondeterministic
//! automata, after De Wulf, Doyen, Henzinger & Raskin, *"Antichains: a new
//! algorithm for checking universality of finite automata"* (CAV 2006) —
//! the tool the paper uses to prove `L(Σ) = L(Σᵈ)` (§5.3, Theorem 3).
//!
//! Specialized to the prefix-closed, all-states-accepting automata of this
//! workspace: `L(A) ⊆ L(B)` fails iff some word drives `A` somewhere while
//! the set of `B`-states reachable on that word becomes empty. The
//! algorithm explores pairs `(a, S)` of an `A`-state and a `B`-state set;
//! since `post` is monotone in `S`, a pair is subsumed by any stored pair
//! with the same `a` and a *smaller* set, so only ⊆-minimal sets are kept
//! per `A`-state — the antichain.
//!
//! Both automata are compiled over one shared interned alphabet
//! ([`crate::CompiledNfa`]), so the frontier loop works purely on
//! `(u32 state, u32 letter)` integers: `post` is a per-letter CSR slice
//! walk, subsumption runs on raw bitset words ([`BitSet::words`]) with
//! the stored sets bucketed by popcount — a subset is never larger than
//! its superset, so `try_insert` scans only the buckets a subset relation
//! is arithmetically possible in — and labels are materialized only for
//! counterexample reconstruction. The
//! pre-compilation original is kept as
//! [`check_inclusion_antichain_reference`] for A/B benchmarks and
//! differential tests.

use std::collections::HashMap;
use std::hash::Hash;

use crate::alphabet::{Alphabet, LetterId};
use crate::bitset::BitSet;
use crate::compiled::{CompiledNfa, EPSILON};
use crate::inclusion::{counterexample, InclusionResult};
use crate::nfa::{Nfa, StateId};

/// Checks `L(a) ⊆ L(b)` with the antichain algorithm.
///
/// Both automata may be nondeterministic and contain ε-moves. The result's
/// `product_states` reports the number of `(state, set)` pairs explored
/// (the effective size of the antichain frontier).
///
/// # Examples
///
/// ```
/// use tm_automata::{check_inclusion_antichain, Nfa};
/// let mut left = Nfa::new();
/// let s = left.add_state();
/// left.set_initial(s);
/// left.add_transition(s, Some('a'), s);
/// let mut right = Nfa::new();
/// let q = right.add_state();
/// right.set_initial(q);
/// right.add_transition(q, Some('a'), q);
/// right.add_transition(q, Some('b'), q);
/// assert!(check_inclusion_antichain(&left, &right).holds());
/// assert!(!check_inclusion_antichain(&right, &left).holds());
/// ```
pub fn check_inclusion_antichain<L: Clone + Eq + Hash>(
    a: &Nfa<L>,
    b: &Nfa<L>,
) -> InclusionResult<L> {
    // One shared alphabet: `a`-letters first, then `b`-only letters.
    // Letters of `a` that `b` lacks get ids with empty CSR rows in `cb`,
    // so `post` naturally returns the empty set — a violation, exactly as
    // in the uncompiled checker.
    let mut alphabet = Alphabet::new();
    let ca = CompiledNfa::compile(a, &mut alphabet);
    let cb = CompiledNfa::compile(b, &mut alphabet);

    let mut queue: Vec<(u32, BitSet)> = Vec::new();
    // (parent queue index, letter id); u32::MAX parent marks a root.
    let mut parent: Vec<(u32, LetterId)> = Vec::new();
    // Antichain of ⊆-minimal B-sets seen, indexed by A-state.
    let mut antichain: Vec<Antichain> = (0..ca.num_states()).map(|_| Antichain::new()).collect();

    let b0 = cb.initial_closure();
    for &qa in ca.initial_states() {
        if antichain[qa as usize].try_insert(&b0) {
            queue.push((qa, b0.clone()));
            parent.push((u32::MAX, EPSILON));
        }
    }

    let mut head = 0usize;
    while head < queue.len() {
        let qa = queue[head].0;
        let (letters, targets) = ca.edges_from(qa);
        for (&letter, &target) in letters.iter().zip(targets) {
            let next_set = if letter == EPSILON {
                queue[head].1.clone()
            } else {
                let post = cb.post(&queue[head].1, letter);
                if post.is_empty() {
                    return counterexample(&alphabet, &parent, head, letter, queue.len());
                }
                post
            };
            if antichain[target as usize].try_insert(&next_set) {
                queue.push((target, next_set));
                parent.push((head as u32, letter));
            }
        }
        head += 1;
    }
    InclusionResult::Included {
        product_states: queue.len(),
    }
}

/// The ⊆-minimal state sets stored for one `A`-state, bucketed by
/// popcount: a stored set can only subsume a candidate if it has **at
/// most** as many elements, and can only be a superset of it with
/// **strictly more** (equal-popcount supersets are equal sets, caught by
/// the subsumption scan first). `try_insert` therefore scans only the
/// buckets a subset relation is arithmetically possible in, and each
/// word-level test short-circuits at the first failing `u64` of the
/// [`BitSet::words`] prefix.
struct Antichain {
    /// `buckets[p]` holds the stored sets of popcount `p` (tail buckets
    /// lazily grown).
    buckets: Vec<Vec<BitSet>>,
    /// Word-level subset tests performed — the regression-test handle
    /// proving the bucketing actually skips work. Compiled out of
    /// non-test builds (the increments fold into a dead local and
    /// vanish).
    #[cfg(test)]
    comparisons: usize,
}

impl Antichain {
    fn new() -> Self {
        Antichain {
            buckets: Vec::new(),
            #[cfg(test)]
            comparisons: 0,
        }
    }

    /// Accumulates `try_insert`'s locally counted subset tests (no-op
    /// outside tests).
    #[allow(unused_variables)]
    fn note_comparisons(&mut self, count: usize) {
        #[cfg(test)]
        {
            self.comparisons += count;
        }
    }

    /// Inserts `set` unless it is subsumed (some stored set is a subset
    /// of it); removes stored strict supersets. Returns `true` if
    /// inserted.
    fn try_insert(&mut self, set: &BitSet) -> bool {
        let words = set.words();
        let popcount = set.len();
        let mut comparisons = 0usize;
        // Subsumption: only sets with popcount <= |set| can be subsets.
        for bucket in self.buckets.iter().take(popcount + 1) {
            for stored in bucket {
                comparisons += 1;
                if subset_words(stored.words(), words) {
                    self.note_comparisons(comparisons);
                    return false;
                }
            }
        }
        // Removal: only strictly larger sets can be strict supersets.
        for bucket in self.buckets.iter_mut().skip(popcount + 1) {
            bucket.retain(|stored| {
                comparisons += 1;
                !subset_words(words, stored.words())
            });
        }
        self.note_comparisons(comparisons);
        if self.buckets.len() <= popcount {
            self.buckets.resize_with(popcount + 1, Vec::new);
        }
        self.buckets[popcount].push(set.clone());
        true
    }

    /// Word-level subset tests performed so far.
    #[cfg(test)]
    fn comparisons(&self) -> usize {
        self.comparisons
    }

    /// Number of stored sets.
    #[cfg(test)]
    fn len(&self) -> usize {
        self.buckets.iter().map(Vec::len).sum()
    }
}

/// `true` if the set with words `a` is a subset of the set with words `b`
/// (equal lengths assumed).
#[inline]
fn subset_words(a: &[u64], b: &[u64]) -> bool {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).all(|(&x, &y)| x & !y == 0)
}

/// The pre-compilation (seed) implementation of
/// [`check_inclusion_antichain`]: per-letter full-edge `Nfa::post`
/// scans, label clones on every discovered edge, `HashMap`-keyed
/// antichain. Kept verbatim as the baseline for benches and differential
/// tests; not used by any checker.
pub fn check_inclusion_antichain_reference<L: Clone + Eq + Hash>(
    a: &Nfa<L>,
    b: &Nfa<L>,
) -> InclusionResult<L> {
    let mut queue: Vec<(StateId, BitSet)> = Vec::new();
    let mut parent: Vec<Option<(usize, Option<L>)>> = Vec::new();
    // Antichain of ⊆-minimal B-sets seen per A-state.
    let mut antichain: HashMap<StateId, Vec<BitSet>> = HashMap::new();

    let b0 = b.initial_closure();
    for &qa in a.initial_states() {
        if try_insert_map(&mut antichain, qa, &b0) {
            queue.push((qa, b0.clone()));
            parent.push(None);
        }
    }

    let mut head = 0;
    while head < queue.len() {
        let (qa, set) = queue[head].clone();
        for (label, target) in a.transitions_from(qa) {
            let next_set = match label {
                None => set.clone(),
                Some(l) => {
                    let post = b.post(&set, l);
                    if post.is_empty() {
                        let mut word = vec![l.clone()];
                        let mut at = head;
                        while let Some((p, lab)) = parent[at].clone() {
                            if let Some(lab) = lab {
                                word.push(lab);
                            }
                            at = p;
                        }
                        word.reverse();
                        return InclusionResult::Counterexample {
                            word,
                            product_states: queue.len(),
                        };
                    }
                    post
                }
            };
            if try_insert_map(&mut antichain, *target, &next_set) {
                queue.push((*target, next_set));
                parent.push(Some((head, label.clone())));
            }
        }
        head += 1;
    }
    InclusionResult::Included {
        product_states: queue.len(),
    }
}

/// [`try_insert`] over the reference implementation's map-keyed antichain.
fn try_insert_map(
    antichain: &mut HashMap<StateId, Vec<BitSet>>,
    state: StateId,
    set: &BitSet,
) -> bool {
    let entry = antichain.entry(state).or_default();
    if entry.iter().any(|stored| stored.is_subset(set)) {
        return false;
    }
    entry.retain(|stored| !set.is_subset(stored));
    entry.push(set.clone());
    true
}

/// Outcome of a language-equivalence check.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EquivalenceResult<L> {
    /// The two automata accept the same language.
    Equivalent {
        /// Pairs explored checking `L(left) ⊆ L(right)`.
        forward_states: usize,
        /// Pairs explored checking `L(right) ⊆ L(left)`.
        backward_states: usize,
    },
    /// A word accepted by the left automaton only.
    OnlyInLeft(Vec<L>),
    /// A word accepted by the right automaton only.
    OnlyInRight(Vec<L>),
}

impl<L> EquivalenceResult<L> {
    /// `true` if the languages coincide.
    pub fn holds(&self) -> bool {
        matches!(self, EquivalenceResult::Equivalent { .. })
    }
}

/// Checks `L(left) = L(right)` by two antichain inclusion checks.
pub fn check_equivalence_antichain<L: Clone + Eq + Hash>(
    left: &Nfa<L>,
    right: &Nfa<L>,
) -> EquivalenceResult<L> {
    let forward = match check_inclusion_antichain(left, right) {
        InclusionResult::Included { product_states } => product_states,
        InclusionResult::Counterexample { word, .. } => {
            return EquivalenceResult::OnlyInLeft(word)
        }
    };
    match check_inclusion_antichain(right, left) {
        InclusionResult::Included { product_states } => EquivalenceResult::Equivalent {
            forward_states: forward,
            backward_states: product_states,
        },
        InclusionResult::Counterexample { word, .. } => EquivalenceResult::OnlyInRight(word),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn letters(ls: &[char]) -> Nfa<char> {
        let mut nfa = Nfa::new();
        let s = nfa.add_state();
        nfa.set_initial(s);
        for &l in ls {
            nfa.add_transition(s, Some(l), s);
        }
        nfa
    }

    #[test]
    fn inclusion_and_counterexample() {
        let ab = letters(&['a', 'b']);
        let a = letters(&['a']);
        assert!(check_inclusion_antichain(&a, &ab).holds());
        let result = check_inclusion_antichain(&ab, &a);
        assert_eq!(result.counterexample(), Some(&['b'][..]));
    }

    #[test]
    fn nondeterministic_right_side() {
        // Right: two branches, one allowing a*, one allowing b; together
        // they cover {a,b}-prefix-words where b ends the word.
        let mut right = Nfa::new();
        let q0 = right.add_state();
        let qa = right.add_state();
        let qb = right.add_state();
        right.set_initial(q0);
        right.add_transition(q0, None, qa);
        right.add_transition(q0, None, qb);
        right.add_transition(qa, Some('a'), qa);
        right.add_transition(qb, Some('b'), qb);
        // Left: the single word "ab" (as prefixes).
        let mut left = Nfa::new();
        let p0 = left.add_state();
        let p1 = left.add_state();
        let p2 = left.add_state();
        left.set_initial(p0);
        left.add_transition(p0, Some('a'), p1);
        left.add_transition(p1, Some('b'), p2);
        let result = check_inclusion_antichain(&left, &right);
        // "ab" is in neither branch: counterexample expected.
        assert_eq!(result.counterexample(), Some(&['a', 'b'][..]));
    }

    #[test]
    fn equivalence_of_dfa_and_its_nfa_disguise() {
        // Same language ({a,b}* prefixes), one with a redundant ε-split.
        let plain = letters(&['a', 'b']);
        let mut split = Nfa::new();
        let q0 = split.add_state();
        let q1 = split.add_state();
        split.set_initial(q0);
        split.add_transition(q0, None, q1);
        split.add_transition(q0, Some('a'), q0);
        split.add_transition(q0, Some('b'), q0);
        split.add_transition(q1, Some('a'), q0);
        let result = check_equivalence_antichain(&plain, &split);
        assert!(result.holds());
    }

    #[test]
    fn equivalence_reports_direction() {
        let ab = letters(&['a', 'b']);
        let a = letters(&['a']);
        assert_eq!(
            check_equivalence_antichain(&ab, &a),
            EquivalenceResult::OnlyInLeft(vec!['b'])
        );
        assert_eq!(
            check_equivalence_antichain(&a, &ab),
            EquivalenceResult::OnlyInRight(vec!['b'])
        );
    }

    #[test]
    fn antichain_subsumption_prunes() {
        let mut entry = Antichain::new();
        let mut big = BitSet::new(4);
        big.insert(0);
        big.insert(1);
        let mut small = BitSet::new(4);
        small.insert(0);
        assert!(entry.try_insert(&big));
        // Smaller set replaces the bigger one.
        assert!(entry.try_insert(&small));
        assert_eq!(entry.len(), 1);
        // Superset now subsumed.
        assert!(!entry.try_insert(&big));
    }

    /// Builds a `capacity`-bit set holding `indices`.
    fn bits(capacity: usize, indices: &[usize]) -> BitSet {
        let mut s = BitSet::new(capacity);
        for &i in indices {
            s.insert(i);
        }
        s
    }

    /// Popcount bucketing regression: `try_insert` performs subset tests
    /// only against buckets a subset relation is arithmetically possible
    /// in, so small candidates skip the subsumption scan entirely and
    /// equal-size candidates skip the superset-removal scan.
    #[test]
    fn popcount_buckets_bound_comparison_counts() {
        let mut entry = Antichain::new();
        // Eight pairwise-incomparable popcount-4 sets.
        for i in 0..8 {
            assert!(entry.try_insert(&bits(64, &[4 * i, 4 * i + 1, 4 * i + 2, 4 * i + 3])));
        }
        assert_eq!(entry.len(), 8);
        // Same-popcount inserts compare only within their own bucket:
        // 0 + 1 + … + 7 subsumption tests, no removal tests (no strictly
        // larger bucket exists).
        assert_eq!(entry.comparisons(), (0..8).sum::<usize>());

        // A popcount-2 candidate: the subsumption scan sees only the
        // (empty) buckets 0..=2 — zero tests — and the removal scan tests
        // exactly the 8 stored popcount-4 sets.
        let before = entry.comparisons();
        assert!(entry.try_insert(&bits(64, &[0, 1])));
        assert_eq!(entry.comparisons() - before, 8);
        // It knocked out its stored superset {0, 1, 2, 3}.
        assert_eq!(entry.len(), 8);

        // A popcount-8 candidate that is a superset of a stored set:
        // rejected by the subsumption scan without ever reaching the
        // removal scan (at most the 9 smaller-or-equal stored sets).
        let before = entry.comparisons();
        assert!(!entry.try_insert(&bits(64, &[4, 5, 6, 7, 8, 9, 10, 11])));
        assert!(entry.comparisons() - before <= 9);
    }

    /// The bucketed antichain stores exactly the ⊆-minimal sets the seed
    /// map-based implementation stores, for an interleaved workload.
    #[test]
    fn bucketed_antichain_matches_reference_storage() {
        let sets: Vec<BitSet> = vec![
            bits(32, &[0, 1, 2]),
            bits(32, &[0, 1]),
            bits(32, &[3]),
            bits(32, &[0, 1, 2, 3]),
            bits(32, &[2]),
            bits(32, &[0, 1]),
            bits(32, &[4, 5]),
            bits(32, &[2, 6]),
        ];
        let mut bucketed = Antichain::new();
        let mut reference: HashMap<StateId, Vec<BitSet>> = HashMap::new();
        for set in &sets {
            assert_eq!(
                bucketed.try_insert(set),
                try_insert_map(&mut reference, 0, set),
                "{set:?}"
            );
        }
        let mut stored: Vec<BitSet> = bucketed.buckets.iter().flatten().cloned().collect();
        let mut expected = reference.remove(&0).unwrap_or_default();
        stored.sort();
        expected.sort();
        assert_eq!(stored, expected);
    }

    /// The compiled antichain check agrees with the seed reference on
    /// verdicts and counterexample words.
    #[test]
    fn compiled_antichain_matches_reference() {
        let ab = letters(&['a', 'b']);
        let a = letters(&['a']);
        let mut eps = Nfa::new();
        let q0 = eps.add_state();
        let q1 = eps.add_state();
        eps.set_initial(q0);
        eps.add_transition(q0, None, q1);
        eps.add_transition(q1, Some('a'), q1);
        eps.add_transition(q1, Some('c'), q0);
        for (left, right) in [(&ab, &a), (&a, &ab), (&eps, &ab), (&ab, &eps), (&eps, &a)] {
            let fast = check_inclusion_antichain(left, right);
            let slow = check_inclusion_antichain_reference(left, right);
            assert_eq!(fast, slow);
        }
    }
}
