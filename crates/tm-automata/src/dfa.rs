//! Deterministic finite automata over an explicit alphabet, with
//! subset-construction determinization and Moore minimization.
//!
//! As everywhere in this workspace, all states are accepting and the
//! transition function may be partial: a missing transition rejects the
//! word (the languages are prefix-closed).

use std::hash::Hash;

use crate::alphabet::Alphabet;
use crate::bitset::BitSet;
use crate::compiled::{CompiledDfa, CompiledNfa, NO_STATE};
use crate::fxhash::FxHashMap;
use crate::nfa::{Nfa, StateId};

/// A deterministic automaton with all states accepting and a (possibly
/// partial) dense transition table.
///
/// # Examples
///
/// ```
/// use tm_automata::Dfa;
/// let mut dfa = Dfa::new(vec!['a', 'b']);
/// let q0 = dfa.add_state();
/// let q1 = dfa.add_state();
/// dfa.set_initial(q0);
/// dfa.set_transition(q0, &'a', q1);
/// assert!(dfa.accepts(&['a']));
/// assert!(!dfa.accepts(&['b']));
/// ```
#[derive(Clone, Debug)]
pub struct Dfa<L> {
    /// The interned alphabet, built once at construction: letter ids are
    /// the letter indices, and consumers that need an [`Alphabet`] over
    /// the same ids ([`Dfa::compile`], the inclusion checkers) clone this
    /// one instead of re-interning every letter.
    alphabet: Alphabet<L>,
    initial: StateId,
    /// `next[state][letter] = Some(target)`.
    next: Vec<Vec<Option<StateId>>>,
}

impl<L: Clone + Eq + Hash> Dfa<L> {
    /// Creates an automaton over the given alphabet, with no states.
    ///
    /// # Panics
    ///
    /// Panics if the alphabet contains duplicate letters.
    pub fn new(alphabet: Vec<L>) -> Self {
        let interned = Alphabet::from_letters(&alphabet);
        assert_eq!(
            interned.len(),
            alphabet.len(),
            "duplicate letters in alphabet"
        );
        Dfa {
            alphabet: interned,
            initial: 0,
            next: Vec::new(),
        }
    }

    /// The alphabet.
    pub fn alphabet(&self) -> &[L] {
        self.alphabet.letters()
    }

    /// The alphabet in interned form (ids are the letter indices) —
    /// prebuilt at construction, so checkers clone it instead of
    /// re-hashing every letter per call.
    pub fn alphabet_interned(&self) -> &Alphabet<L> {
        &self.alphabet
    }

    /// Adds a fresh state with no outgoing transitions.
    pub fn add_state(&mut self) -> StateId {
        self.next.push(vec![None; self.alphabet.len()]);
        self.next.len() - 1
    }

    /// Sets the initial state.
    pub fn set_initial(&mut self, state: StateId) {
        self.initial = state;
    }

    /// The initial state.
    pub fn initial_state(&self) -> StateId {
        self.initial
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.next.len()
    }

    /// Number of defined transitions.
    pub fn num_transitions(&self) -> usize {
        self.next
            .iter()
            .map(|row| row.iter().filter(|t| t.is_some()).count())
            .sum()
    }

    /// Defines `from --letter--> to`.
    ///
    /// # Panics
    ///
    /// Panics if `letter` is not in the alphabet.
    pub fn set_transition(&mut self, from: StateId, letter: &L, to: StateId) {
        let li = self.alphabet.get(letter).expect("letter not in alphabet") as usize;
        self.next[from][li] = Some(to);
    }

    /// The successor of `state` under `letter`, or `None` (reject) if
    /// undefined. Letters outside the alphabet also return `None`.
    pub fn step(&self, state: StateId, letter: &L) -> Option<StateId> {
        let li = self.alphabet.get(letter)? as usize;
        self.next[state][li]
    }

    /// Successor by letter index (see [`Dfa::alphabet`] for the order).
    pub fn step_by_index(&self, state: StateId, letter_index: usize) -> Option<StateId> {
        self.next[state][letter_index]
    }

    /// Raw successor by letter index with the [`NO_STATE`] sentinel: the
    /// table-free stepping used by `check_inclusion`'s light path, which
    /// avoids building the dense [`CompiledDfa`] table when the
    /// implementation is small.
    pub(crate) fn step_id(&self, state: u32, letter: u32) -> u32 {
        self.next[state as usize][letter as usize].map_or(NO_STATE, |s| s as u32)
    }

    /// Defines `from --letter--> to` by letter index, skipping the label
    /// hash of [`Dfa::set_transition`].
    ///
    /// # Panics
    ///
    /// Panics if `letter_index` is out of range.
    pub fn set_transition_by_index(&mut self, from: StateId, letter_index: usize, to: StateId) {
        assert!(letter_index < self.alphabet.len(), "letter index out of range");
        self.next[from][letter_index] = Some(to);
    }

    /// Compiles to the dense-table form used by the inclusion inner
    /// loops; letter ids equal this automaton's letter indices. The
    /// interned alphabet is cloned from the prebuilt one, not re-interned
    /// letter by letter.
    pub fn compile(&self) -> CompiledDfa<L> {
        let alphabet = self.alphabet.clone();
        let mut next = Vec::with_capacity(self.num_states() * self.alphabet.len());
        for row in &self.next {
            next.extend(
                row.iter()
                    .map(|t| t.map_or(NO_STATE, |s| s as u32)),
            );
        }
        CompiledDfa::new(
            alphabet,
            u32::try_from(self.num_states()).expect("more than u32::MAX states"),
            self.initial as u32,
            next,
        )
    }

    /// Whether the automaton accepts `word`.
    pub fn accepts(&self, word: &[L]) -> bool {
        let mut q = self.initial;
        for letter in word {
            match self.step(q, letter) {
                Some(q2) => q = q2,
                None => return false,
            }
        }
        true
    }

    /// Converts to an [`Nfa`] with the same language.
    pub fn to_nfa(&self) -> Nfa<L> {
        let mut nfa = Nfa::new();
        for _ in 0..self.num_states() {
            nfa.add_state();
        }
        nfa.set_initial(self.initial);
        for (q, row) in self.next.iter().enumerate() {
            for (li, target) in row.iter().enumerate() {
                if let Some(t) = target {
                    nfa.add_transition(q, Some(self.alphabet.letter(li as u32).clone()), *t);
                }
            }
        }
        nfa
    }

    /// Determinizes `nfa` over `alphabet` by the subset construction
    /// (ε-closures included). Only reachable subsets are materialized; the
    /// empty subset is not a state (it becomes a missing transition).
    ///
    /// # Examples
    ///
    /// ```
    /// use tm_automata::{Dfa, Nfa};
    /// let mut nfa = Nfa::new();
    /// let q0 = nfa.add_state();
    /// let q1 = nfa.add_state();
    /// nfa.set_initial(q0);
    /// nfa.add_transition(q0, Some('a'), q0);
    /// nfa.add_transition(q0, Some('a'), q1);
    /// let dfa = Dfa::determinize(&nfa, vec!['a']);
    /// assert!(dfa.accepts(&['a', 'a']));
    /// ```
    pub fn determinize(nfa: &Nfa<L>, alphabet: Vec<L>) -> Dfa<L> {
        let mut dfa = Dfa::new(alphabet);
        // Compile the NFA over the target alphabet so each `post` is a
        // per-letter CSR slice walk instead of a full-edge scan; NFA
        // labels outside the alphabet get ids ≥ the alphabet length and
        // are simply never queried.
        let mut interner = dfa.alphabet.clone();
        let num_letters = interner.len() as u32;
        let compiled = CompiledNfa::compile(nfa, &mut interner);
        let start = compiled.initial_closure();
        let mut ids: FxHashMap<BitSet, StateId> = FxHashMap::default();
        let q0 = dfa.add_state();
        dfa.set_initial(q0);
        ids.insert(start.clone(), q0);
        let mut queue = vec![start];
        let mut head = 0;
        while head < queue.len() {
            let from = ids[&queue[head]];
            for li in 0..num_letters {
                let target = compiled.post(&queue[head], li);
                if target.is_empty() {
                    continue;
                }
                let to = match ids.get(&target) {
                    Some(&id) => id,
                    None => {
                        let id = dfa.add_state();
                        ids.insert(target.clone(), id);
                        queue.push(target);
                        id
                    }
                };
                dfa.next[from][li as usize] = Some(to);
            }
            head += 1;
        }
        dfa
    }

    /// Minimizes the automaton (Moore partition refinement over the
    /// completed automaton; the implicit reject sink is kept implicit).
    ///
    /// Since all states are accepting, the initial partition separates
    /// states only from the implicit sink; refinement then splits by
    /// successor blocks. Unreachable states are dropped first.
    pub fn minimize(&self) -> Dfa<L> {
        let reachable = self.reachable_states();
        let states: Vec<StateId> = reachable.iter().collect();
        let mut position = vec![usize::MAX; self.num_states()];
        for (i, &q) in states.iter().enumerate() {
            position[q] = i;
        }
        let n = states.len();
        let sink = n; // implicit reject sink block
        let mut block = vec![0usize; n];
        let mut num_blocks = 1usize;
        loop {
            // Signature: for each state, the blocks of its successors
            // (sink for missing transitions).
            let mut sig_ids: FxHashMap<Vec<usize>, usize> = FxHashMap::default();
            let mut new_block = vec![0usize; n];
            for (i, &q) in states.iter().enumerate() {
                let mut sig = Vec::with_capacity(self.alphabet.len() + 1);
                sig.push(block[i]);
                for li in 0..self.alphabet.len() {
                    let b = match self.next[q][li] {
                        Some(t) => block[position[t]],
                        None => sink,
                    };
                    sig.push(b);
                }
                let next_id = sig_ids.len();
                let id = *sig_ids.entry(sig).or_insert(next_id);
                new_block[i] = id;
            }
            let new_num = sig_ids.len();
            block = new_block;
            if new_num == num_blocks {
                break;
            }
            num_blocks = new_num;
        }
        // Build the quotient automaton.
        let mut out = Dfa {
            alphabet: self.alphabet.clone(),
            initial: 0,
            next: Vec::new(),
        };
        for _ in 0..num_blocks {
            out.add_state();
        }
        out.set_initial(block[position[self.initial]]);
        for (i, &q) in states.iter().enumerate() {
            for li in 0..self.alphabet.len() {
                if let Some(t) = self.next[q][li] {
                    out.next[block[i]][li] = Some(block[position[t]]);
                }
            }
        }
        out
    }

    /// The set of states reachable from the initial state.
    pub fn reachable_states(&self) -> BitSet {
        let mut seen = BitSet::new(self.num_states().max(self.initial + 1));
        seen.insert(self.initial);
        let mut stack = vec![self.initial];
        while let Some(q) = stack.pop() {
            for target in self.next[q].iter().flatten() {
                if seen.insert(*target) {
                    stack.push(*target);
                }
            }
        }
        seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ab_dfa() -> Dfa<char> {
        // Language: prefixes of a*b.
        let mut dfa = Dfa::new(vec!['a', 'b']);
        let q0 = dfa.add_state();
        let q1 = dfa.add_state();
        dfa.set_initial(q0);
        dfa.set_transition(q0, &'a', q0);
        dfa.set_transition(q0, &'b', q1);
        dfa
    }

    #[test]
    fn step_and_accept() {
        let dfa = ab_dfa();
        assert!(dfa.accepts(&[]));
        assert!(dfa.accepts(&['a', 'a', 'b']));
        assert!(!dfa.accepts(&['b', 'a']));
        assert_eq!(dfa.step(0, &'z'), None);
        assert_eq!(dfa.num_transitions(), 2);
    }

    #[test]
    #[should_panic(expected = "duplicate letters")]
    fn duplicate_alphabet_rejected() {
        let _ = Dfa::new(vec!['a', 'a']);
    }

    #[test]
    fn determinize_preserves_language() {
        let mut nfa = Nfa::new();
        let q0 = nfa.add_state();
        let q1 = nfa.add_state();
        let q2 = nfa.add_state();
        nfa.set_initial(q0);
        nfa.add_transition(q0, Some('a'), q1);
        nfa.add_transition(q0, None, q1);
        nfa.add_transition(q1, Some('b'), q2);
        let dfa = Dfa::determinize(&nfa, vec!['a', 'b']);
        for word in [&[][..], &['a'][..], &['b'][..], &['a', 'b'][..]] {
            assert_eq!(dfa.accepts(word), nfa.accepts(word), "{word:?}");
        }
        assert!(!dfa.accepts(&['b', 'b']));
    }

    #[test]
    fn minimize_merges_equivalent_states() {
        // Two redundant sibling states with identical behavior.
        let mut dfa = Dfa::new(vec!['a']);
        let q0 = dfa.add_state();
        let q1 = dfa.add_state();
        let q2 = dfa.add_state();
        dfa.set_initial(q0);
        dfa.set_transition(q0, &'a', q1);
        dfa.set_transition(q1, &'a', q2);
        // q2 dead-ends; q1 and q2 differ; a twin of q1:
        let q3 = dfa.add_state();
        dfa.set_transition(q3, &'a', q2);
        // q3 is unreachable, so it should vanish entirely.
        let min = dfa.minimize();
        assert_eq!(min.num_states(), 3);
        assert!(min.accepts(&['a', 'a']));
        assert!(!min.accepts(&['a', 'a', 'a']));
    }

    #[test]
    fn minimize_collapses_uniform_loop() {
        // Every state accepts everything: minimal automaton has 1 state.
        let mut dfa = Dfa::new(vec!['a', 'b']);
        let q0 = dfa.add_state();
        let q1 = dfa.add_state();
        dfa.set_initial(q0);
        for q in [q0, q1] {
            dfa.set_transition(q, &'a', q1);
            dfa.set_transition(q, &'b', q0);
        }
        let min = dfa.minimize();
        assert_eq!(min.num_states(), 1);
        assert!(min.accepts(&['a', 'b', 'a', 'a']));
    }

    #[test]
    fn to_nfa_round_trip() {
        let dfa = ab_dfa();
        let nfa = dfa.to_nfa();
        for word in [&[][..], &['a', 'b'][..], &['b', 'b'][..]] {
            assert_eq!(dfa.accepts(word), nfa.accepts(word));
        }
    }
}
