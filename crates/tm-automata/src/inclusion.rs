//! Language inclusion `L(A) ⊆ L(B)` for a nondeterministic implementation
//! against a **deterministic** specification — the paper's core safety
//! check (§5.4): "Since the TM specification is deterministic, language
//! inclusion can be checked in time linear in the size of the systems."

use std::hash::Hash;

use crate::dfa::Dfa;
use crate::nfa::{Nfa, StateId};

/// Outcome of an inclusion check.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum InclusionResult<L> {
    /// Every word of the implementation is accepted by the specification.
    Included {
        /// Number of product states explored.
        product_states: usize,
    },
    /// A word of the implementation rejected by the specification.
    Counterexample {
        /// A shortest offending word.
        word: Vec<L>,
        /// Number of product states explored before the violation.
        product_states: usize,
    },
}

impl<L> InclusionResult<L> {
    /// `true` if inclusion holds.
    pub fn holds(&self) -> bool {
        matches!(self, InclusionResult::Included { .. })
    }

    /// The counterexample word, if any.
    pub fn counterexample(&self) -> Option<&[L]> {
        match self {
            InclusionResult::Counterexample { word, .. } => Some(word),
            InclusionResult::Included { .. } => None,
        }
    }

    /// Number of product states explored.
    pub fn product_states(&self) -> usize {
        match self {
            InclusionResult::Included { product_states }
            | InclusionResult::Counterexample { product_states, .. } => *product_states,
        }
    }
}

/// Checks `L(nfa) ⊆ L(dfa)` by breadth-first exploration of the product,
/// following ε-moves of the implementation on the spot.
///
/// Both automata have all states accepting, so inclusion fails exactly
/// when some reachable implementation transition has no counterpart in the
/// specification; BFS order makes the returned counterexample shortest.
///
/// # Examples
///
/// ```
/// use tm_automata::{check_inclusion, Dfa, Nfa};
/// let mut imp = Nfa::new();
/// let s = imp.add_state();
/// imp.set_initial(s);
/// imp.add_transition(s, Some('a'), s);
/// imp.add_transition(s, Some('b'), s);
/// let mut spec = Dfa::new(vec!['a', 'b']);
/// let q = spec.add_state();
/// spec.set_initial(q);
/// spec.set_transition(q, &'a', q);
/// let result = check_inclusion(&imp, &spec);
/// assert_eq!(result.counterexample(), Some(&['b'][..]));
/// ```
pub fn check_inclusion<L: Clone + Eq + Hash>(nfa: &Nfa<L>, dfa: &Dfa<L>) -> InclusionResult<L> {
    // Product pair (implementation state, spec state), interned.
    let mut ids: std::collections::HashMap<(StateId, StateId), usize> =
        std::collections::HashMap::new();
    // Parent pointers for counterexample reconstruction:
    // (parent pair index, label on the edge — None for ε).
    let mut parent: Vec<Option<(usize, Option<L>)>> = Vec::new();
    let mut pairs: Vec<(StateId, StateId)> = Vec::new();

    let spec0 = dfa.initial_state();
    for &q in nfa.initial_states() {
        if ids.insert((q, spec0), pairs.len()).is_none() {
            pairs.push((q, spec0));
            parent.push(None);
        }
    }

    let mut head = 0;
    while head < pairs.len() {
        let (qi, qs) = pairs[head];
        for (label, target) in nfa.transitions_from(qi) {
            let next = match label {
                None => Some(qs), // internal step: spec stays put
                Some(l) => match dfa.step(qs, l) {
                    Some(qs2) => Some(qs2),
                    None => {
                        // Violation: reconstruct the word along parents.
                        let mut word = vec![l.clone()];
                        let mut at = head;
                        while let Some((p, lab)) = parent[at].clone() {
                            if let Some(lab) = lab {
                                word.push(lab);
                            }
                            at = p;
                        }
                        word.reverse();
                        return InclusionResult::Counterexample {
                            word,
                            product_states: pairs.len(),
                        };
                    }
                },
            };
            if let Some(qs2) = next {
                let key = (*target, qs2);
                if let std::collections::hash_map::Entry::Vacant(e) = ids.entry(key) {
                    e.insert(pairs.len());
                    pairs.push(key);
                    parent.push(Some((head, label.clone())));
                }
            }
        }
        head += 1;
    }
    InclusionResult::Included {
        product_states: pairs.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn letter_nfa(letters: &[char]) -> Nfa<char> {
        let mut nfa = Nfa::new();
        let s = nfa.add_state();
        nfa.set_initial(s);
        for &l in letters {
            nfa.add_transition(s, Some(l), s);
        }
        nfa
    }

    fn letter_dfa(letters: &[char]) -> Dfa<char> {
        let mut dfa = Dfa::new(letters.to_vec());
        let q = dfa.add_state();
        dfa.set_initial(q);
        for l in letters {
            dfa.set_transition(q, l, q);
        }
        dfa
    }

    #[test]
    fn inclusion_holds_for_subset_alphabet() {
        let result = check_inclusion(&letter_nfa(&['a']), &letter_dfa(&['a', 'b']));
        assert!(result.holds());
        assert_eq!(result.counterexample(), None);
        assert_eq!(result.product_states(), 1);
    }

    #[test]
    fn counterexample_is_shortest() {
        // Implementation: a* then one c allowed after a b.
        let mut imp = Nfa::new();
        let s0 = imp.add_state();
        let s1 = imp.add_state();
        imp.set_initial(s0);
        imp.add_transition(s0, Some('a'), s0);
        imp.add_transition(s0, Some('b'), s1);
        imp.add_transition(s1, Some('c'), s1);
        // Spec: only a and b.
        let mut spec = Dfa::new(vec!['a', 'b', 'c']);
        let q = spec.add_state();
        spec.set_initial(q);
        spec.set_transition(q, &'a', q);
        spec.set_transition(q, &'b', q);
        let result = check_inclusion(&imp, &spec);
        assert_eq!(result.counterexample(), Some(&['b', 'c'][..]));
    }

    #[test]
    fn epsilon_steps_do_not_consume_spec_letters() {
        let mut imp = Nfa::new();
        let s0 = imp.add_state();
        let s1 = imp.add_state();
        imp.set_initial(s0);
        imp.add_transition(s0, None, s1);
        imp.add_transition(s1, Some('a'), s1);
        let result = check_inclusion(&imp, &letter_dfa(&['a']));
        assert!(result.holds());
    }

    #[test]
    fn letter_outside_spec_alphabet_is_violation() {
        let result = check_inclusion(&letter_nfa(&['z']), &letter_dfa(&['a']));
        assert_eq!(result.counterexample(), Some(&['z'][..]));
    }
}
