//! Language inclusion `L(A) ⊆ L(B)` for a nondeterministic implementation
//! against a **deterministic** specification — the paper's core safety
//! check (§5.4): "Since the TM specification is deterministic, language
//! inclusion can be checked in time linear in the size of the systems."
//!
//! The check is *index-based* end to end: the implementation NFA is
//! compiled over the specification's interned alphabet
//! ([`crate::CompiledNfa`] / [`crate::CompiledDfa`]), the product BFS
//! runs purely on `(u32 state, u32 letter)` integers — no label clones
//! and no label hashing inside the loop — and labels are materialized
//! only when a counterexample word is reconstructed. The pre-compilation
//! original is kept as [`check_inclusion_reference`] for A/B benchmarks
//! and differential tests.

use std::hash::Hash;

use crate::alphabet::LetterId;
use crate::compiled::{CompiledDfa, CompiledNfa, EPSILON, NO_STATE};
use crate::dfa::Dfa;
use crate::fxhash::FxHashSet;
use crate::nfa::{Nfa, StateId};

/// Outcome of an inclusion check.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum InclusionResult<L> {
    /// Every word of the implementation is accepted by the specification.
    Included {
        /// Number of product states explored.
        product_states: usize,
    },
    /// A word of the implementation rejected by the specification.
    Counterexample {
        /// A shortest offending word.
        word: Vec<L>,
        /// Number of product states explored before the violation.
        product_states: usize,
    },
}

impl<L> InclusionResult<L> {
    /// `true` if inclusion holds.
    pub fn holds(&self) -> bool {
        matches!(self, InclusionResult::Included { .. })
    }

    /// The counterexample word, if any.
    pub fn counterexample(&self) -> Option<&[L]> {
        match self {
            InclusionResult::Counterexample { word, .. } => Some(word),
            InclusionResult::Included { .. } => None,
        }
    }

    /// Number of product states explored.
    pub fn product_states(&self) -> usize {
        match self {
            InclusionResult::Included { product_states }
            | InclusionResult::Counterexample { product_states, .. } => *product_states,
        }
    }
}

/// Checks `L(nfa) ⊆ L(dfa)` by breadth-first exploration of the product,
/// following ε-moves of the implementation on the spot.
///
/// Both automata have all states accepting, so inclusion fails exactly
/// when some reachable implementation transition has no counterpart in the
/// specification; BFS order makes the returned counterexample shortest
/// (and identical to [`check_inclusion_reference`]'s).
///
/// Compiles the specification on the spot — unless the implementation is
/// so small that building the dense spec table would dominate, in which
/// case the BFS steps the `Dfa`'s rows directly (same interned ids,
/// identical results). When the same specification is checked against
/// several implementations, compile it once with [`Dfa::compile`] and
/// use [`check_inclusion_compiled`].
///
/// # Examples
///
/// ```
/// use tm_automata::{check_inclusion, Dfa, Nfa};
/// let mut imp = Nfa::new();
/// let s = imp.add_state();
/// imp.set_initial(s);
/// imp.add_transition(s, Some('a'), s);
/// imp.add_transition(s, Some('b'), s);
/// let mut spec = Dfa::new(vec!['a', 'b']);
/// let q = spec.add_state();
/// spec.set_initial(q);
/// spec.set_transition(q, &'a', q);
/// let result = check_inclusion(&imp, &spec);
/// assert_eq!(result.counterexample(), Some(&['b'][..]));
/// ```
pub fn check_inclusion<L: Clone + Eq + Hash>(nfa: &Nfa<L>, dfa: &Dfa<L>) -> InclusionResult<L> {
    // Compiling the specification costs O(spec states × letters) per call
    // (dense-table fill). For implementations far smaller than that — the
    // sequential TM's 3 states against a 3520-state specification — the
    // table build dominates the whole check, so a *light path* steps the
    // specification's row vectors directly: same interned letter ids
    // (cloned from the Dfa's prebuilt alphabet, no re-interning), same
    // BFS, identical results; only the per-step load differs.
    let table_cells = dfa.num_states() * dfa.alphabet().len();
    if table_cells > 32 * (nfa.num_transitions() + nfa.num_states() + 1) {
        let mut alphabet = dfa.alphabet_interned().clone();
        let imp = CompiledNfa::compile(nfa, &mut alphabet);
        run_product_bfs(&imp, &DfaRows(dfa), &alphabet)
    } else {
        check_inclusion_compiled(nfa, &dfa.compile())
    }
}

/// [`check_inclusion`] against a pre-compiled specification — the form
/// the safety checker uses, amortizing the specification compilation
/// over many implementations.
pub fn check_inclusion_compiled<L: Clone + Eq + Hash>(
    nfa: &Nfa<L>,
    spec: &CompiledDfa<L>,
) -> InclusionResult<L> {
    // Intern the implementation's labels on top of the specification
    // alphabet: ids below `spec_letters` are specification letters (and
    // equal its letter indices); ids at or above it can never be matched
    // by the specification and are immediate violations when reached.
    let mut alphabet = spec.alphabet().clone();
    let imp = CompiledNfa::compile(nfa, &mut alphabet);
    run_product_bfs(&imp, spec, &alphabet)
}

/// Runs the product BFS with the visited representation suited to the
/// product size.
fn run_product_bfs<L: Clone, D: SpecStep>(
    imp: &CompiledNfa,
    spec: &D,
    alphabet: &crate::alphabet::Alphabet<L>,
) -> InclusionResult<L> {
    // The BFS only ever *dedups* product pairs, so the visited structure
    // is a set, not a map. When the full product fits a bitmap, even the
    // hash goes away: one test-and-set per discovered edge.
    let product_bits = imp.num_states() as u64 * spec.num_states() as u64;
    if product_bits <= DENSE_VISITED_LIMIT {
        let visited = DenseVisited {
            set: crate::bitset::BitSet::new(product_bits as usize),
            spec_states: spec.num_states() as u64,
        };
        product_bfs(imp, spec, alphabet, visited)
    } else {
        product_bfs(imp, spec, alphabet, HashedVisited(FxHashSet::default()))
    }
}

/// Deterministic-specification stepping, abstracted over the storage:
/// the dense [`CompiledDfa`] table or the [`Dfa`]'s row vectors
/// ([`DfaRows`], the light path). Monomorphized into the BFS.
trait SpecStep {
    /// Number of specification states.
    fn num_states(&self) -> usize;
    /// Number of specification letters.
    fn num_letters(&self) -> u32;
    /// The initial state.
    fn initial(&self) -> u32;
    /// Raw successor: [`NO_STATE`] when missing. `letter` is below
    /// [`SpecStep::num_letters`].
    fn step_raw(&self, state: u32, letter: LetterId) -> u32;
}

impl<L> SpecStep for CompiledDfa<L> {
    #[inline]
    fn num_states(&self) -> usize {
        CompiledDfa::num_states(self)
    }

    #[inline]
    fn num_letters(&self) -> u32 {
        self.alphabet().len() as u32
    }

    #[inline]
    fn initial(&self) -> u32 {
        self.initial_state()
    }

    #[inline]
    fn step_raw(&self, state: u32, letter: LetterId) -> u32 {
        CompiledDfa::step_raw(self, state, letter)
    }
}

/// The table-free specification view behind [`check_inclusion`]'s light
/// path.
struct DfaRows<'a, L>(&'a Dfa<L>);

impl<L: Clone + Eq + Hash> SpecStep for DfaRows<'_, L> {
    #[inline]
    fn num_states(&self) -> usize {
        self.0.num_states()
    }

    #[inline]
    fn num_letters(&self) -> u32 {
        self.0.alphabet().len() as u32
    }

    #[inline]
    fn initial(&self) -> u32 {
        self.0.initial_state() as u32
    }

    #[inline]
    fn step_raw(&self, state: u32, letter: LetterId) -> u32 {
        self.0.step_id(state, letter)
    }
}

/// Largest dense product bitmap the checker will allocate: 2^27 bits =
/// 16 MiB. Above it (e.g. TL2-sized TMs against (2,3)+ specifications)
/// the visited set falls back to hashing packed pairs.
const DENSE_VISITED_LIMIT: u64 = 1 << 27;

/// Dedup structure for product pairs; monomorphized into the BFS.
trait ProductVisited {
    /// `true` exactly on the first visit of `(qi, qs)`.
    fn first_visit(&mut self, qi: u32, qs: u32) -> bool;
}

struct DenseVisited {
    set: crate::bitset::BitSet,
    spec_states: u64,
}

impl ProductVisited for DenseVisited {
    #[inline]
    fn first_visit(&mut self, qi: u32, qs: u32) -> bool {
        self.set
            .insert((qi as u64 * self.spec_states + qs as u64) as usize)
    }
}

struct HashedVisited(FxHashSet<u64>);

impl ProductVisited for HashedVisited {
    #[inline]
    fn first_visit(&mut self, qi: u32, qs: u32) -> bool {
        self.0.insert((qi as u64) << 32 | qs as u64)
    }
}

/// The index-based product BFS: every step is integer arithmetic on
/// `(u32 state, u32 letter)` — no label clones, no label hashing.
fn product_bfs<L: Clone, D: SpecStep, V: ProductVisited>(
    imp: &CompiledNfa,
    spec: &D,
    alphabet: &crate::alphabet::Alphabet<L>,
    mut visited: V,
) -> InclusionResult<L> {
    const ROOT: u32 = u32::MAX;
    let spec_letters = spec.num_letters();
    let mut pairs: Vec<(u32, u32)> = Vec::new();
    // (predecessor index, letter id) per pair, for counterexamples.
    let mut parent: Vec<(u32, LetterId)> = Vec::new();

    let spec0 = spec.initial();
    for &qi in imp.initial_states() {
        if visited.first_visit(qi, spec0) {
            pairs.push((qi, spec0));
            parent.push((ROOT, EPSILON));
        }
    }

    let mut head = 0usize;
    while head < pairs.len() {
        let (qi, qs) = pairs[head];
        let (letters, targets) = imp.edges_from(qi);
        for (&letter, &target) in letters.iter().zip(targets) {
            let qs2 = if letter == EPSILON {
                qs // internal step: spec stays put
            } else if letter < spec_letters {
                match spec.step_raw(qs, letter) {
                    NO_STATE => {
                        return counterexample(alphabet, &parent, head, letter, pairs.len())
                    }
                    next => next,
                }
            } else {
                // Implementation letter outside the spec alphabet.
                return counterexample(alphabet, &parent, head, letter, pairs.len());
            };
            if visited.first_visit(target, qs2) {
                pairs.push((target, qs2));
                parent.push((head as u32, letter));
            }
        }
        head += 1;
    }
    InclusionResult::Included {
        product_states: pairs.len(),
    }
}

/// Reconstructs the violating word along parent pointers; the only place
/// letter ids are materialized back into labels. Shared with the
/// antichain checker, whose queue uses the same parent encoding.
pub(crate) fn counterexample<L: Clone>(
    alphabet: &crate::alphabet::Alphabet<L>,
    parent: &[(u32, LetterId)],
    mut at: usize,
    last_letter: LetterId,
    product_states: usize,
) -> InclusionResult<L> {
    let mut word = vec![alphabet.letter(last_letter).clone()];
    loop {
        let (prev, letter) = parent[at];
        if prev == u32::MAX {
            break;
        }
        if letter != EPSILON {
            word.push(alphabet.letter(letter).clone());
        }
        at = prev as usize;
    }
    word.reverse();
    InclusionResult::Counterexample {
        word,
        product_states,
    }
}

/// The pre-compilation (seed) implementation of [`check_inclusion`]:
/// label hashing in `Dfa::step`, label clones on every discovered edge,
/// SipHash product-pair interning.
///
/// Kept verbatim as the baseline for the `compiled-vs-seed` criterion
/// bench and the differential property tests; not used by any checker.
pub fn check_inclusion_reference<L: Clone + Eq + Hash>(
    nfa: &Nfa<L>,
    dfa: &Dfa<L>,
) -> InclusionResult<L> {
    // Product pair (implementation state, spec state), interned.
    let mut ids: std::collections::HashMap<(StateId, StateId), usize> =
        std::collections::HashMap::new();
    // Parent pointers for counterexample reconstruction:
    // (parent pair index, label on the edge — None for ε).
    let mut parent: Vec<Option<(usize, Option<L>)>> = Vec::new();
    let mut pairs: Vec<(StateId, StateId)> = Vec::new();

    let spec0 = dfa.initial_state();
    for &q in nfa.initial_states() {
        if let std::collections::hash_map::Entry::Vacant(e) = ids.entry((q, spec0)) {
            e.insert(pairs.len());
            pairs.push((q, spec0));
            parent.push(None);
        }
    }

    let mut head = 0;
    while head < pairs.len() {
        let (qi, qs) = pairs[head];
        for (label, target) in nfa.transitions_from(qi) {
            let next = match label {
                None => Some(qs), // internal step: spec stays put
                Some(l) => match dfa.step(qs, l) {
                    Some(qs2) => Some(qs2),
                    None => {
                        // Violation: reconstruct the word along parents.
                        let mut word = vec![l.clone()];
                        let mut at = head;
                        while let Some((p, lab)) = parent[at].clone() {
                            if let Some(lab) = lab {
                                word.push(lab);
                            }
                            at = p;
                        }
                        word.reverse();
                        return InclusionResult::Counterexample {
                            word,
                            product_states: pairs.len(),
                        };
                    }
                },
            };
            if let Some(qs2) = next {
                let key = (*target, qs2);
                if let std::collections::hash_map::Entry::Vacant(e) = ids.entry(key) {
                    e.insert(pairs.len());
                    pairs.push(key);
                    parent.push(Some((head, label.clone())));
                }
            }
        }
        head += 1;
    }
    InclusionResult::Included {
        product_states: pairs.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn letter_nfa(letters: &[char]) -> Nfa<char> {
        let mut nfa = Nfa::new();
        let s = nfa.add_state();
        nfa.set_initial(s);
        for &l in letters {
            nfa.add_transition(s, Some(l), s);
        }
        nfa
    }

    fn letter_dfa(letters: &[char]) -> Dfa<char> {
        let mut dfa = Dfa::new(letters.to_vec());
        let q = dfa.add_state();
        dfa.set_initial(q);
        for l in letters {
            dfa.set_transition(q, l, q);
        }
        dfa
    }

    #[test]
    fn inclusion_holds_for_subset_alphabet() {
        let result = check_inclusion(&letter_nfa(&['a']), &letter_dfa(&['a', 'b']));
        assert!(result.holds());
        assert_eq!(result.counterexample(), None);
        assert_eq!(result.product_states(), 1);
    }

    #[test]
    fn counterexample_is_shortest() {
        // Implementation: a* then one c allowed after a b.
        let mut imp = Nfa::new();
        let s0 = imp.add_state();
        let s1 = imp.add_state();
        imp.set_initial(s0);
        imp.add_transition(s0, Some('a'), s0);
        imp.add_transition(s0, Some('b'), s1);
        imp.add_transition(s1, Some('c'), s1);
        // Spec: only a and b.
        let mut spec = Dfa::new(vec!['a', 'b', 'c']);
        let q = spec.add_state();
        spec.set_initial(q);
        spec.set_transition(q, &'a', q);
        spec.set_transition(q, &'b', q);
        let result = check_inclusion(&imp, &spec);
        assert_eq!(result.counterexample(), Some(&['b', 'c'][..]));
    }

    #[test]
    fn epsilon_steps_do_not_consume_spec_letters() {
        let mut imp = Nfa::new();
        let s0 = imp.add_state();
        let s1 = imp.add_state();
        imp.set_initial(s0);
        imp.add_transition(s0, None, s1);
        imp.add_transition(s1, Some('a'), s1);
        let result = check_inclusion(&imp, &letter_dfa(&['a']));
        assert!(result.holds());
    }

    #[test]
    fn letter_outside_spec_alphabet_is_violation() {
        let result = check_inclusion(&letter_nfa(&['z']), &letter_dfa(&['a']));
        assert_eq!(result.counterexample(), Some(&['z'][..]));
    }

    /// Random-ish structured cases: the compiled check and the seed
    /// reference must agree exactly (verdict, counterexample word, and
    /// product-state count).
    #[test]
    fn compiled_check_matches_reference() {
        let cases: Vec<(Nfa<char>, Dfa<char>)> = vec![
            (letter_nfa(&['a', 'b']), letter_dfa(&['a'])),
            (letter_nfa(&['a']), letter_dfa(&['a', 'b'])),
            (letter_nfa(&['z']), letter_dfa(&['a'])),
            (
                {
                    let mut imp = Nfa::new();
                    let s0 = imp.add_state();
                    let s1 = imp.add_state();
                    imp.set_initial(s0);
                    imp.add_transition(s0, None, s1);
                    imp.add_transition(s1, Some('a'), s0);
                    imp.add_transition(s0, Some('b'), s1);
                    imp.add_transition(s1, Some('c'), s1);
                    imp
                },
                {
                    let mut spec = Dfa::new(vec!['a', 'b']);
                    let q0 = spec.add_state();
                    let q1 = spec.add_state();
                    spec.set_initial(q0);
                    spec.set_transition(q0, &'a', q1);
                    spec.set_transition(q1, &'b', q0);
                    spec
                },
            ),
        ];
        for (nfa, dfa) in &cases {
            let fast = check_inclusion(nfa, dfa);
            let slow = check_inclusion_reference(nfa, dfa);
            assert_eq!(fast, slow);
        }
    }

    #[test]
    fn precompiled_spec_reusable_across_checks() {
        let spec = letter_dfa(&['a', 'b']).compile();
        assert!(check_inclusion_compiled(&letter_nfa(&['a']), &spec).holds());
        let bad = check_inclusion_compiled(&letter_nfa(&['a', 'z']), &spec);
        assert_eq!(bad.counterexample(), Some(&['z'][..]));
    }
}
