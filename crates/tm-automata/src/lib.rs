//! # tm-automata — finite automata and graph algorithms
//!
//! The automata-theoretic substrate of the *tm-modelcheck* workspace
//! (reproduction of *"Model Checking Transactional Memories"*, Guerraoui,
//! Henzinger, Singh). All languages in this domain are prefix-closed run
//! languages, so every automaton here has **all states accepting** and a
//! possibly partial transition structure.
//!
//! Provided machinery:
//!
//! * [`Nfa`] with ε-moves and [`Dfa`] with subset-construction
//!   [`Dfa::determinize`] and Moore [`Dfa::minimize`];
//! * an interned-alphabet compiled core: [`Alphabet`] maps labels to
//!   dense `u32` [`LetterId`]s, [`CompiledNfa`] stores transitions in
//!   CSR form grouped by letter (ε segregated), [`CompiledDfa`] is one
//!   dense `u32` table — see `README.md` for when to use which;
//! * on-the-fly state-space exploration of rule-defined systems
//!   ([`TransitionSystem`] / [`explore`],
//!   [`DeterministicTransitionSystem`] / [`explore_deterministic`]);
//! * linear-time inclusion against a deterministic specification
//!   ([`check_inclusion`], [`check_inclusion_compiled`]) with shortest
//!   counterexamples, running purely on `(u32 state, u32 letter)`
//!   integers (the pre-compilation originals survive as
//!   [`check_inclusion_reference`] /
//!   [`check_inclusion_antichain_reference`] for A/B benches);
//! * **on-the-fly product exploration** ([`check_inclusion_otf`],
//!   [`SuccessorSource`]): the implementation side is stepped lazily —
//!   never materialized — with an optional deterministic parallel
//!   level-synchronous BFS (`TM_MODELCHECK_THREADS`); see `README.md`
//!   for the engine hierarchy and which entry point to call;
//! * antichain-based inclusion and equivalence between nondeterministic
//!   automata ([`check_inclusion_antichain`],
//!   [`check_equivalence_antichain`]) in the style of De Wulf et al.;
//! * labelled graphs, iterative Tarjan SCCs, and constrained closed-walk
//!   construction for liveness lassos ([`LabeledGraph`],
//!   [`strongly_connected_components`], [`closed_walk_through`]);
//! * the **compiled liveness engine** ([`CompiledRunGraph`],
//!   [`RunGraphSource`], `livecheck.rs`): run graphs built on the fly
//!   into CSR with per-edge class bitmasks, mask-filtered Tarjan in a
//!   reusable [`LiveScratch`] arena, and deterministic parallel fan-out
//!   of independent loop queries ([`CompiledRunGraph::find_first_loop`]);
//! * the **persistent worker pool** ([`WorkerPool`]) and the
//!   [`Executor`] abstraction every parallel engine region runs on —
//!   sequential, fresh scoped threads, or the pool — plus the
//!   `TM_MODELCHECK_THREADS` configuration helpers
//!   ([`modelcheck_threads`], [`parse_thread_count`]); the
//!   `tm_checker::Verifier` session keeps one pool alive across all of
//!   its queries;
//! * the [`FxHasher`] used by every hot-path hash map in the workspace
//!   ([`FxHashMap`], [`FxHashSet`]).
//!
//! # Examples
//!
//! ```
//! use tm_automata::{check_inclusion, Dfa, Nfa};
//!
//! // Implementation: emits `a` or `b`; specification allows only `a`.
//! let mut imp = Nfa::new();
//! let s = imp.add_state();
//! imp.set_initial(s);
//! imp.add_transition(s, Some('a'), s);
//! imp.add_transition(s, Some('b'), s);
//!
//! let mut spec = Dfa::new(vec!['a', 'b']);
//! let q = spec.add_state();
//! spec.set_initial(q);
//! spec.set_transition(q, &'a', q);
//!
//! let verdict = check_inclusion(&imp, &spec);
//! assert_eq!(verdict.counterexample(), Some(&['b'][..]));
//! ```

// `deny` (not `forbid`) so the one lifetime-erasure transmute of the
// persistent worker pool can be allowed locally; see `pool.rs`.
#![deny(unsafe_code)]
#![warn(missing_docs)]

mod alphabet;
mod antichain;
mod bitset;
mod budget;
mod compiled;
mod config;
mod dfa;
mod explore;
pub mod fault;
mod fxhash;
mod graph;
mod inclusion;
mod livecheck;
mod nfa;
mod pool;
mod product;

pub use alphabet::{Alphabet, LetterId};
pub use budget::{CancelToken, EngineError, QueryBudget};
pub use config::{
    default_threads, modelcheck_threads, parse_thread_count, DEFAULT_THREAD_CAP,
};
pub use antichain::{
    check_equivalence_antichain, check_inclusion_antichain,
    check_inclusion_antichain_reference, EquivalenceResult,
};
pub use bitset::{BitSet, Iter as BitSetIter};
pub use compiled::{CompiledDfa, CompiledNfa, DfaParts, NfaParts, EPSILON, NO_STATE};
pub use dfa::Dfa;
pub use explore::{
    explore, explore_budget, explore_deterministic, explore_deterministic_budget,
    DeterministicTransitionSystem, Explored, TransitionSystem,
};
pub use fxhash::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use graph::{
    closed_walk_through, strongly_connected_components, LabeledGraph, Sccs,
};
pub use inclusion::{
    check_inclusion, check_inclusion_compiled, check_inclusion_reference, InclusionResult,
};
pub use livecheck::{
    CompiledLasso, CompiledRunGraph, EdgeFilter, EdgeMask, LabelClass, LiveScratch, LoopQuery,
    LoopSelection, RunGraphParts, RunGraphSource, MASK_ABORT, MASK_ALL_THREADS, MASK_COMMIT,
    MASK_EMITS, MAX_MASK_THREADS,
};
pub use nfa::{Nfa, StateId};
pub use pool::{Executor, TaskScope, WorkerPool};
pub use product::{
    check_inclusion_otf, check_inclusion_otf_bounded, check_inclusion_otf_budget,
    check_inclusion_otf_cached, check_inclusion_otf_cached_budget, check_inclusion_otf_executor,
    check_inclusion_otf_lazy, check_inclusion_otf_stats, check_inclusion_otf_threads,
    DtsSpecSource, NfaSource, OtfStats, SpecCache, SpecSource, SuccessorSource,
};
