//! On-the-fly exploration of implicitly defined transition systems.
//!
//! TM algorithms and TM specifications are defined by transition *rules*
//! over structured states (tuples of status functions and variable sets).
//! [`explore`] interns the reachable states of such a system into an
//! explicit [`Nfa`], remembering the original state for each id so that
//! counterexamples and liveness loops can be reported in source terms.

use std::hash::Hash;

use crate::budget::{EngineError, QueryBudget};
use crate::fxhash::FxHashMap;
use crate::nfa::{Nfa, StateId};

/// How many BFS visits pass between deadline/cancellation checks: cheap
/// enough to bound abort latency, coarse enough to keep the hot loop
/// clock-free.
const INTERRUPT_STRIDE: usize = 1024;

/// An implicitly defined labelled transition system.
///
/// `Label = None` in a successor is an internal (ε) step: in TM-algorithm
/// terms, an extended command answered with the `⊥` response.
pub trait TransitionSystem {
    /// Structured state type.
    type State: Clone + Eq + Hash;
    /// Transition label type.
    type Label: Clone;

    /// The initial state.
    fn initial(&self) -> Self::State;

    /// Appends all transitions enabled in `state` to `out` as
    /// `(label, successor)` pairs.
    fn successors(&self, state: &Self::State, out: &mut Vec<(Option<Self::Label>, Self::State)>);
}

/// The result of [`explore`]: an explicit automaton plus the interning
/// table mapping state ids back to the structured states.
#[derive(Clone, Debug)]
pub struct Explored<S, L> {
    /// The reachable portion of the system as an NFA (all states
    /// accepting).
    pub nfa: Nfa<L>,
    /// `states[id]` is the structured state interned as `id`.
    pub states: Vec<S>,
}

impl<S, L> Explored<S, L> {
    /// Number of reachable states.
    pub fn num_states(&self) -> usize {
        self.states.len()
    }

    /// The structured state behind `id`.
    pub fn state(&self, id: StateId) -> &S {
        &self.states[id]
    }
}

/// Explores the reachable state space of `ts` breadth-first, up to
/// `max_states` states.
///
/// # Errors
///
/// [`EngineError::StateLimit`] if the reachable state space exceeds
/// `max_states` — in this workspace the bound is the caller's declaration
/// that the instance was expected to be finite and small (cf. the paper's
/// reduction to two threads and two variables), so hitting it is a
/// structured abort, never a panic.
pub fn explore<T: TransitionSystem>(
    ts: &T,
    max_states: usize,
) -> Result<Explored<T::State, T::Label>, EngineError> {
    explore_budget(ts, &QueryBudget::new(max_states))
}

/// [`explore`] under a full [`QueryBudget`]: the state bound is checked
/// before every intern, the deadline/cancellation every
/// `INTERRUPT_STRIDE` visited states.
pub fn explore_budget<T: TransitionSystem>(
    ts: &T,
    budget: &QueryBudget,
) -> Result<Explored<T::State, T::Label>, EngineError> {
    let mut nfa = Nfa::new();
    let mut ids: FxHashMap<T::State, StateId> = FxHashMap::default();
    let mut states: Vec<T::State> = Vec::new();

    let init = ts.initial();
    let id0 = nfa.add_state();
    nfa.set_initial(id0);
    ids.insert(init.clone(), id0);
    states.push(init);

    let mut head = 0;
    let mut buf: Vec<(Option<T::Label>, T::State)> = Vec::new();
    while head < states.len() {
        if head.is_multiple_of(INTERRUPT_STRIDE) {
            budget.check_interrupt()?;
        }
        buf.clear();
        // Borrow the frontier state in place: the successor buffer is
        // filled before `states` grows, so no per-visit clone is needed.
        ts.successors(&states[head], &mut buf);
        for (label, succ) in buf.drain(..) {
            let to = match ids.get(&succ) {
                Some(&id) => id,
                None => {
                    budget.check_states(states.len())?;
                    let id = nfa.add_state();
                    ids.insert(succ.clone(), id);
                    states.push(succ);
                    id
                }
            };
            nfa.add_transition(head, label, to);
        }
        head += 1;
    }
    Ok(Explored { nfa, states })
}

/// An implicitly defined *deterministic* transition system: at most one
/// successor per (state, letter), no internal steps.
pub trait DeterministicTransitionSystem {
    /// Structured state type.
    type State: Clone + Eq + Hash;
    /// Transition label type.
    type Label: Clone + Eq + Hash;

    /// The initial state.
    fn initial(&self) -> Self::State;

    /// The successor of `state` under `letter`, or `None` if the letter is
    /// rejected in `state`.
    fn step(&self, state: &Self::State, letter: &Self::Label) -> Option<Self::State>;
}

/// Blanket reference implementation, so adapters that own their system
/// (such as [`crate::DtsSpecSource`]) can be built over a borrowed one.
impl<T: DeterministicTransitionSystem + ?Sized> DeterministicTransitionSystem for &T {
    type State = T::State;
    type Label = T::Label;

    fn initial(&self) -> Self::State {
        (**self).initial()
    }

    fn step(&self, state: &Self::State, letter: &Self::Label) -> Option<Self::State> {
        (**self).step(state, letter)
    }
}

/// Explores a deterministic system over `alphabet` into a
/// [`Dfa`](crate::Dfa),
/// breadth-first, up to `max_states` states.
///
/// # Errors
///
/// [`EngineError::StateLimit`] if the reachable state space exceeds
/// `max_states`.
pub fn explore_deterministic<T: DeterministicTransitionSystem>(
    ts: &T,
    alphabet: Vec<T::Label>,
    max_states: usize,
) -> Result<ExploredDfa<T>, EngineError> {
    explore_deterministic_budget(ts, alphabet, &QueryBudget::new(max_states))
}

/// The result of a deterministic exploration: the compiled
/// [`Dfa`](crate::Dfa) plus the concrete state behind each automaton id.
pub type ExploredDfa<T> = (
    crate::dfa::Dfa<<T as DeterministicTransitionSystem>::Label>,
    Vec<<T as DeterministicTransitionSystem>::State>,
);

/// [`explore_deterministic`] under a full [`QueryBudget`].
pub fn explore_deterministic_budget<T: DeterministicTransitionSystem>(
    ts: &T,
    alphabet: Vec<T::Label>,
    budget: &QueryBudget,
) -> Result<ExploredDfa<T>, EngineError> {
    let mut dfa = crate::dfa::Dfa::new(alphabet);
    let mut ids: FxHashMap<T::State, StateId> = FxHashMap::default();
    let mut states: Vec<T::State> = Vec::new();

    let init = ts.initial();
    let q0 = dfa.add_state();
    dfa.set_initial(q0);
    ids.insert(init.clone(), q0);
    states.push(init);

    // One up-front copy of the alphabet instead of a letter clone (plus a
    // label hash in `set_transition`) per explored edge.
    let letters: Vec<T::Label> = dfa.alphabet().to_vec();
    let mut head = 0;
    while head < states.len() {
        if head.is_multiple_of(INTERRUPT_STRIDE) {
            budget.check_interrupt()?;
        }
        for (li, letter) in letters.iter().enumerate() {
            let Some(succ) = ts.step(&states[head], letter) else {
                continue;
            };
            let to = match ids.get(&succ) {
                Some(&id) => id,
                None => {
                    budget.check_states(states.len())?;
                    let id = dfa.add_state();
                    ids.insert(succ.clone(), id);
                    states.push(succ);
                    id
                }
            };
            dfa.set_transition_by_index(head, li, to);
        }
        head += 1;
    }
    Ok((dfa, states))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Counter modulo `n`, incremented by 'i' with an ε-reset to 0.
    struct ModCounter {
        n: u32,
    }

    impl TransitionSystem for ModCounter {
        type State = u32;
        type Label = char;

        fn initial(&self) -> u32 {
            0
        }

        fn successors(&self, state: &u32, out: &mut Vec<(Option<char>, u32)>) {
            out.push((Some('i'), (state + 1) % self.n));
            if *state != 0 {
                out.push((None, 0));
            }
        }
    }

    #[test]
    fn explores_all_residues() {
        let explored = explore(&ModCounter { n: 5 }, 100).unwrap();
        assert_eq!(explored.num_states(), 5);
        assert_eq!(explored.nfa.num_epsilon_transitions(), 4);
        assert_eq!(*explored.state(0), 0);
    }

    #[test]
    fn state_bound_is_a_structured_error() {
        assert_eq!(
            explore(&ModCounter { n: 100 }, 10).err(),
            Some(EngineError::StateLimit(10))
        );
    }

    #[test]
    fn expired_deadline_aborts_exploration() {
        let budget = QueryBudget::unlimited().with_timeout(std::time::Duration::ZERO);
        assert_eq!(
            explore_budget(&ModCounter { n: 100 }, &budget).err(),
            Some(EngineError::Deadline)
        );
        let stale = crate::CancelToken::new();
        stale.cancel();
        let budget = QueryBudget::unlimited().with_cancel(stale);
        assert_eq!(
            explore_deterministic_budget(&Parity, vec!['f', 'z'], &budget).err(),
            Some(EngineError::Cancelled)
        );
    }

    struct Parity;

    impl DeterministicTransitionSystem for Parity {
        type State = bool;
        type Label = char;

        fn initial(&self) -> bool {
            false
        }

        fn step(&self, state: &bool, letter: &char) -> Option<bool> {
            match letter {
                'f' => Some(!state),
                'z' if !state => Some(*state), // 'z' only allowed when even
                _ => None,
            }
        }
    }

    #[test]
    fn deterministic_exploration() {
        let (dfa, states) = explore_deterministic(&Parity, vec!['f', 'z'], 10).unwrap();
        assert_eq!(dfa.num_states(), 2);
        assert_eq!(states.len(), 2);
        assert!(dfa.accepts(&['f', 'f', 'z']));
        assert!(!dfa.accepts(&['f', 'z']));
    }
}
