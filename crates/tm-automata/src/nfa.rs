//! Nondeterministic finite automata with ε-transitions.
//!
//! The automata in this workspace recognize *prefix-closed* languages of
//! runs: **every state is accepting**, and a word is rejected exactly when
//! no run for it exists. This matches the paper's TM specifications and TM
//! algorithm languages, and it simplifies all the algorithms (inclusion
//! failure = the implementation moves while the specification's state set
//! becomes empty).

use std::collections::HashSet;
use std::hash::Hash;

use crate::alphabet::Alphabet;
use crate::bitset::BitSet;
use crate::compiled::CompiledNfa;

/// State index within an automaton.
pub type StateId = usize;

/// A nondeterministic finite automaton over labels `L`, with ε-moves and
/// all states accepting.
///
/// # Examples
///
/// ```
/// use tm_automata::Nfa;
/// let mut nfa = Nfa::new();
/// let q0 = nfa.add_state();
/// let q1 = nfa.add_state();
/// nfa.set_initial(q0);
/// nfa.add_transition(q0, Some('a'), q1);
/// nfa.add_transition(q1, None, q0); // ε back
/// assert!(nfa.accepts(&['a', 'a']));
/// assert!(!nfa.accepts(&['b']));
/// ```
#[derive(Clone, Debug)]
pub struct Nfa<L> {
    initial: Vec<StateId>,
    /// Outgoing transitions per state: `(label, target)`; `None` is ε.
    transitions: Vec<Vec<(Option<L>, StateId)>>,
}

impl<L> Default for Nfa<L> {
    fn default() -> Self {
        Self::new()
    }
}

impl<L> Nfa<L> {
    /// Creates an automaton with no states.
    pub fn new() -> Self {
        Nfa {
            initial: Vec::new(),
            transitions: Vec::new(),
        }
    }

    /// Adds a fresh state and returns its id.
    pub fn add_state(&mut self) -> StateId {
        self.transitions.push(Vec::new());
        self.transitions.len() - 1
    }

    /// Marks a state as initial.
    pub fn set_initial(&mut self, state: StateId) {
        if !self.initial.contains(&state) {
            self.initial.push(state);
        }
    }

    /// Adds a transition; `label = None` is an ε-move.
    pub fn add_transition(&mut self, from: StateId, label: Option<L>, to: StateId) {
        self.transitions[from].push((label, to));
    }

    /// The initial states.
    pub fn initial_states(&self) -> &[StateId] {
        &self.initial
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.transitions.len()
    }

    /// Total number of transitions (including ε).
    pub fn num_transitions(&self) -> usize {
        self.transitions.iter().map(Vec::len).sum()
    }

    /// Number of ε-transitions.
    pub fn num_epsilon_transitions(&self) -> usize {
        self.transitions
            .iter()
            .flatten()
            .filter(|(l, _)| l.is_none())
            .count()
    }

    /// The outgoing transitions of a state.
    pub fn transitions_from(&self, state: StateId) -> &[(Option<L>, StateId)] {
        &self.transitions[state]
    }

    /// Extends `set` to its ε-closure in place.
    pub fn epsilon_close(&self, set: &mut BitSet) {
        let mut stack: Vec<StateId> = set.iter().collect();
        while let Some(q) = stack.pop() {
            for (label, target) in &self.transitions[q] {
                if label.is_none() && set.insert(*target) {
                    stack.push(*target);
                }
            }
        }
    }

    /// The ε-closure of the initial states.
    pub fn initial_closure(&self) -> BitSet {
        let mut set = BitSet::new(self.num_states());
        for &q in &self.initial {
            set.insert(q);
        }
        self.epsilon_close(&mut set);
        set
    }
}

impl<L: Eq> Nfa<L> {
    /// The ε-closed successor set of `set` under `label`.
    pub fn post(&self, set: &BitSet, label: &L) -> BitSet {
        let mut out = BitSet::new(self.num_states());
        for q in set.iter() {
            for (l, target) in &self.transitions[q] {
                if l.as_ref() == Some(label) {
                    out.insert(*target);
                }
            }
        }
        self.epsilon_close(&mut out);
        out
    }

    /// Whether the automaton accepts `word` (all states accepting: accepts
    /// iff some run exists).
    pub fn accepts(&self, word: &[L]) -> bool {
        let mut frontier = self.initial_closure();
        for letter in word {
            frontier = self.post(&frontier, letter);
            if frontier.is_empty() {
                return false;
            }
        }
        true
    }

    /// The distinct (non-ε) labels appearing on transitions, in first-seen
    /// order.
    pub fn labels(&self) -> Vec<L>
    where
        L: Clone + Hash,
    {
        let mut seen = HashSet::new();
        let mut out = Vec::new();
        for (l, _) in self.transitions.iter().flatten() {
            if let Some(l) = l {
                if seen.insert(l.clone()) {
                    out.push(l.clone());
                }
            }
        }
        out
    }

    /// The distinct (non-ε) labels as a shared [`Alphabet`], ids in
    /// first-seen order. Interning the labels of several automata into
    /// **one** alphabet (this one, extended via [`Alphabet::intern`] or
    /// [`CompiledNfa::compile`]) is how spec and TM automata agree on
    /// letter ids.
    pub fn labels_interned(&self) -> Alphabet<L>
    where
        L: Clone + Hash,
    {
        let mut alphabet = Alphabet::new();
        for (l, _) in self.transitions.iter().flatten() {
            if let Some(l) = l {
                alphabet.intern(l);
            }
        }
        alphabet
    }

    /// Compiles this automaton over `alphabet` (interning any new
    /// labels); see [`CompiledNfa`].
    pub fn compile(&self, alphabet: &mut Alphabet<L>) -> CompiledNfa
    where
        L: Clone + Hash,
    {
        CompiledNfa::compile(self, alphabet)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// a*b automaton with an ε-shortcut.
    fn sample() -> Nfa<char> {
        let mut nfa = Nfa::new();
        let q0 = nfa.add_state();
        let q1 = nfa.add_state();
        let q2 = nfa.add_state();
        nfa.set_initial(q0);
        nfa.add_transition(q0, Some('a'), q0);
        nfa.add_transition(q0, None, q1);
        nfa.add_transition(q1, Some('b'), q2);
        nfa
    }

    #[test]
    fn accepts_with_epsilon() {
        let nfa = sample();
        assert!(nfa.accepts(&[]));
        assert!(nfa.accepts(&['a', 'a', 'b']));
        assert!(nfa.accepts(&['b']));
        assert!(!nfa.accepts(&['b', 'b']));
        assert!(!nfa.accepts(&['c']));
    }

    #[test]
    fn closure_contains_epsilon_reachable() {
        let nfa = sample();
        let init = nfa.initial_closure();
        assert_eq!(init.iter().collect::<Vec<_>>(), vec![0, 1]);
    }

    #[test]
    fn counts() {
        let nfa = sample();
        assert_eq!(nfa.num_states(), 3);
        assert_eq!(nfa.num_transitions(), 3);
        assert_eq!(nfa.num_epsilon_transitions(), 1);
        assert_eq!(nfa.labels(), vec!['a', 'b']);
    }

    #[test]
    fn labels_interned_matches_labels_order() {
        let nfa = sample();
        let alphabet = nfa.labels_interned();
        assert_eq!(alphabet.letters(), &nfa.labels()[..]);
        assert_eq!(alphabet.get(&'a'), Some(0));
        assert_eq!(alphabet.get(&'b'), Some(1));
    }

    #[test]
    fn duplicate_initial_ignored() {
        let mut nfa: Nfa<char> = Nfa::new();
        let q = nfa.add_state();
        nfa.set_initial(q);
        nfa.set_initial(q);
        assert_eq!(nfa.initial_states(), &[0]);
    }
}
