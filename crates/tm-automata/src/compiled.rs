//! Compiled automata over an interned alphabet: the hot-loop
//! representation behind the inclusion checkers.
//!
//! [`crate::Nfa`] and [`crate::Dfa`] are convenient to *build* — labels
//! are arbitrary `L`, transitions are pushed freely — but poor to *run*:
//! `Nfa::post` re-scans every outgoing edge of every frontier state per
//! letter, and every `Dfa::step` hashes a label. The compiled forms fix
//! the representation instead of the algorithms:
//!
//! * [`CompiledNfa`] stores transitions in CSR (compressed sparse row)
//!   form **grouped by `(state, letter id)`**, with ε-edges segregated
//!   into their own arrays, so `post` walks exactly the per-letter target
//!   slices of the frontier; it also keeps the original insertion-order
//!   edge list per state, which the inclusion BFS walks so that
//!   counterexamples come out identical to the uncompiled checker's.
//! * [`CompiledDfa`] flattens the transition function into one dense
//!   `u32` table indexed by `state * num_letters + letter`.
//!
//! Both are label-free once built: all labels live in the
//! [`Alphabet`] used at compile time, and are only materialized again
//! when a counterexample word is reconstructed.

use std::hash::Hash;

use crate::alphabet::{Alphabet, LetterId};
use crate::bitset::BitSet;
use crate::nfa::Nfa;

/// Sentinel letter id marking an ε-edge in [`CompiledNfa`] edge lists.
pub const EPSILON: LetterId = u32::MAX;

/// Sentinel state id marking a missing transition in [`CompiledDfa`].
pub const NO_STATE: u32 = u32::MAX;

/// An NFA compiled to dense letter ids and CSR transition arrays.
///
/// # Examples
///
/// ```
/// use tm_automata::{Alphabet, CompiledNfa, Nfa};
/// let mut nfa = Nfa::new();
/// let q0 = nfa.add_state();
/// let q1 = nfa.add_state();
/// nfa.set_initial(q0);
/// nfa.add_transition(q0, Some('a'), q1);
/// nfa.add_transition(q1, None, q0);
/// let mut alphabet = Alphabet::new();
/// let compiled = CompiledNfa::compile(&nfa, &mut alphabet);
/// let a = alphabet.get(&'a').unwrap();
/// assert!(compiled.accepts(&[a, a]));
/// assert!(!compiled.accepts(&[a, 99]));
/// ```
#[derive(Clone, Debug)]
pub struct CompiledNfa {
    num_states: u32,
    num_letters: u32,
    initial: Vec<u32>,
    /// CSR by `(state, letter)`: targets of non-ε edges with letter `a`
    /// from state `q` live in
    /// `letter_targets[letter_offsets[q * num_letters + a] .. letter_offsets[q * num_letters + a + 1]]`.
    letter_offsets: Vec<u32>,
    letter_targets: Vec<u32>,
    /// CSR of ε-edges per state.
    eps_offsets: Vec<u32>,
    eps_targets: Vec<u32>,
    /// Original insertion-order edges per state (ε encoded as
    /// [`EPSILON`]): preserves the BFS discovery order of the uncompiled
    /// checkers, hence identical shortest counterexamples.
    edge_offsets: Vec<u32>,
    edge_letters: Vec<LetterId>,
    edge_targets: Vec<u32>,
}

impl CompiledNfa {
    /// Compiles `nfa`, interning every label into `alphabet` (letters
    /// already interned keep their ids, so automata compiled against the
    /// same alphabet agree on letter ids).
    ///
    /// # Panics
    ///
    /// Panics if the automaton exceeds `u32` states.
    pub fn compile<L: Clone + Eq + Hash>(nfa: &Nfa<L>, alphabet: &mut Alphabet<L>) -> Self {
        let num_states = u32::try_from(nfa.num_states()).expect("more than u32::MAX states");
        // Pass 1: intern labels into per-state edge lists (insertion
        // order), counting ε and per-(state, letter) degrees.
        let mut edge_offsets = Vec::with_capacity(nfa.num_states() + 1);
        let mut edge_letters = Vec::with_capacity(nfa.num_transitions());
        let mut edge_targets = Vec::with_capacity(nfa.num_transitions());
        edge_offsets.push(0u32);
        for q in 0..nfa.num_states() {
            for (label, target) in nfa.transitions_from(q) {
                let letter = match label {
                    None => EPSILON,
                    Some(l) => alphabet.intern(l),
                };
                edge_letters.push(letter);
                edge_targets.push(*target as u32);
            }
            edge_offsets
                .push(u32::try_from(edge_letters.len()).expect("more than u32::MAX transitions"));
        }
        let num_letters = u32::try_from(alphabet.len()).expect("more than u32::MAX letters");

        // Pass 2: counting sort of the edges into CSR by (state, letter)
        // and the segregated ε arrays.
        let rows = nfa.num_states() * alphabet.len();
        let mut letter_offsets = vec![0u32; rows + 1];
        let mut eps_offsets = vec![0u32; nfa.num_states() + 1];
        for q in 0..nfa.num_states() {
            let edges = edge_offsets[q] as usize..edge_offsets[q + 1] as usize;
            for k in edges {
                if edge_letters[k] == EPSILON {
                    eps_offsets[q + 1] += 1;
                } else {
                    letter_offsets[q * alphabet.len() + edge_letters[k] as usize + 1] += 1;
                }
            }
        }
        for i in 1..letter_offsets.len() {
            letter_offsets[i] += letter_offsets[i - 1];
        }
        for i in 1..eps_offsets.len() {
            eps_offsets[i] += eps_offsets[i - 1];
        }
        let mut letter_targets = vec![0u32; *letter_offsets.last().expect("nonempty") as usize];
        let mut eps_targets = vec![0u32; *eps_offsets.last().expect("nonempty") as usize];
        let mut letter_cursor = letter_offsets.clone();
        let mut eps_cursor = eps_offsets.clone();
        for q in 0..nfa.num_states() {
            let edges = edge_offsets[q] as usize..edge_offsets[q + 1] as usize;
            for k in edges {
                if edge_letters[k] == EPSILON {
                    eps_targets[eps_cursor[q] as usize] = edge_targets[k];
                    eps_cursor[q] += 1;
                } else {
                    let row = q * alphabet.len() + edge_letters[k] as usize;
                    letter_targets[letter_cursor[row] as usize] = edge_targets[k];
                    letter_cursor[row] += 1;
                }
            }
        }

        CompiledNfa {
            num_states,
            num_letters,
            initial: nfa.initial_states().iter().map(|&q| q as u32).collect(),
            letter_offsets,
            letter_targets,
            eps_offsets,
            eps_targets,
            edge_offsets,
            edge_letters,
            edge_targets,
        }
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.num_states as usize
    }

    /// Number of letters the automaton was compiled against.
    pub fn num_letters(&self) -> usize {
        self.num_letters as usize
    }

    /// The initial states.
    pub fn initial_states(&self) -> &[u32] {
        &self.initial
    }

    /// Estimated heap footprint in bytes: the sum of the backing arrays'
    /// capacities. This is the crate's heap-accounting convention (used
    /// by session-level memory budgets): containers are counted at
    /// `capacity × element size`, elements that own further heap memory
    /// are counted at their inline size only. For the all-`u32` compiled
    /// automaton the figure is exact.
    pub fn heap_bytes(&self) -> usize {
        let u32s = self.initial.capacity()
            + self.letter_offsets.capacity()
            + self.letter_targets.capacity()
            + self.eps_offsets.capacity()
            + self.eps_targets.capacity()
            + self.edge_offsets.capacity()
            + self.edge_letters.capacity()
            + self.edge_targets.capacity();
        u32s * std::mem::size_of::<u32>()
    }

    /// Targets of non-ε edges from `state` labelled `letter` (empty for
    /// letters outside the compiled alphabet).
    #[inline]
    pub fn successors(&self, state: u32, letter: LetterId) -> &[u32] {
        if letter >= self.num_letters {
            return &[];
        }
        let row = state as usize * self.num_letters as usize + letter as usize;
        let range = self.letter_offsets[row] as usize..self.letter_offsets[row + 1] as usize;
        &self.letter_targets[range]
    }

    /// Targets of ε-edges from `state`.
    #[inline]
    pub fn eps_successors(&self, state: u32) -> &[u32] {
        let range =
            self.eps_offsets[state as usize] as usize..self.eps_offsets[state as usize + 1] as usize;
        &self.eps_targets[range]
    }

    /// The outgoing edges of `state` in original insertion order, as
    /// parallel `(letters, targets)` slices with ε encoded as
    /// [`EPSILON`].
    #[inline]
    pub fn edges_from(&self, state: u32) -> (&[LetterId], &[u32]) {
        let range =
            self.edge_offsets[state as usize] as usize..self.edge_offsets[state as usize + 1] as usize;
        (&self.edge_letters[range.clone()], &self.edge_targets[range])
    }

    /// Extends `set` to its ε-closure in place.
    pub fn epsilon_close(&self, set: &mut BitSet) {
        let mut stack: Vec<usize> = set.iter().collect();
        while let Some(q) = stack.pop() {
            for &target in self.eps_successors(q as u32) {
                if set.insert(target as usize) {
                    stack.push(target as usize);
                }
            }
        }
    }

    /// The ε-closure of the initial states.
    pub fn initial_closure(&self) -> BitSet {
        let mut set = BitSet::new(self.num_states());
        for &q in &self.initial {
            set.insert(q as usize);
        }
        self.epsilon_close(&mut set);
        set
    }

    /// The ε-closed successor set of `set` under `letter`: a per-letter
    /// slice walk over the frontier (no full-edge scan).
    pub fn post(&self, set: &BitSet, letter: LetterId) -> BitSet {
        let mut out = BitSet::new(self.num_states());
        for q in set.iter() {
            for &target in self.successors(q as u32, letter) {
                out.insert(target as usize);
            }
        }
        self.epsilon_close(&mut out);
        out
    }

    /// Whether the automaton accepts a word of letter ids (all states
    /// accepting, as everywhere in this workspace).
    pub fn accepts(&self, word: &[LetterId]) -> bool {
        let mut frontier = self.initial_closure();
        for &letter in word {
            frontier = self.post(&frontier, letter);
            if frontier.is_empty() {
                return false;
            }
        }
        true
    }

    /// Clones the raw CSR arrays out of the automaton — the serialization
    /// form used by the on-disk artifact store (`tm-store`).
    pub fn to_parts(&self) -> NfaParts {
        NfaParts {
            num_states: self.num_states,
            num_letters: self.num_letters,
            initial: self.initial.clone(),
            letter_offsets: self.letter_offsets.clone(),
            letter_targets: self.letter_targets.clone(),
            eps_offsets: self.eps_offsets.clone(),
            eps_targets: self.eps_targets.clone(),
            edge_offsets: self.edge_offsets.clone(),
            edge_letters: self.edge_letters.clone(),
            edge_targets: self.edge_targets.clone(),
        }
    }

    /// Reassembles an automaton from raw CSR arrays
    /// ([`CompiledNfa::to_parts`]), verifying every structural invariant
    /// [`CompiledNfa::compile`] establishes before trusting the data: CSR
    /// shapes and monotonicity, target ranges, and exact agreement
    /// between the insertion-order edge lists and the per-letter/ε CSR
    /// (the CSR is a counting-sort permutation of the edge lists, so the
    /// two encode each other). Deserialized artifacts are therefore
    /// behaviourally indistinguishable from freshly compiled ones.
    ///
    /// # Errors
    ///
    /// A static description of the first violated invariant.
    pub fn from_parts(parts: NfaParts) -> Result<Self, &'static str> {
        let NfaParts {
            num_states,
            num_letters,
            initial,
            letter_offsets,
            letter_targets,
            eps_offsets,
            eps_targets,
            edge_offsets,
            edge_letters,
            edge_targets,
        } = parts;
        let n = num_states as usize;
        let rows = n
            .checked_mul(num_letters as usize)
            .ok_or("state x letter row count overflows")?;
        let check_csr = |offsets: &[u32], targets: &[u32], rows: usize| -> Result<(), &'static str> {
            if offsets.len() != rows + 1 {
                return Err("CSR offset array has wrong length");
            }
            if offsets[0] != 0 {
                return Err("CSR offsets do not start at 0");
            }
            if offsets.windows(2).any(|w| w[0] > w[1]) {
                return Err("CSR offsets are not monotone");
            }
            if offsets[rows] as usize != targets.len() {
                return Err("CSR offsets do not cover the target array");
            }
            Ok(())
        };
        check_csr(&letter_offsets, &letter_targets, rows)?;
        check_csr(&eps_offsets, &eps_targets, n)?;
        check_csr(&edge_offsets, &edge_targets, n)?;
        if edge_letters.len() != edge_targets.len() {
            return Err("edge letter/target arrays disagree in length");
        }
        if initial.iter().any(|&q| q as usize >= n) {
            return Err("initial state out of range");
        }
        for targets in [&letter_targets, &eps_targets, &edge_targets] {
            if targets.iter().any(|&q| q as usize >= n) {
                return Err("edge target out of range");
            }
        }
        // Replay the compile-time counting sort over the insertion-order
        // edge lists and demand the CSR matches position for position.
        let mut letter_cursor: Vec<u32> = letter_offsets[..rows].to_vec();
        let mut eps_cursor: Vec<u32> = eps_offsets[..n].to_vec();
        for q in 0..n {
            for k in edge_offsets[q] as usize..edge_offsets[q + 1] as usize {
                let letter = edge_letters[k];
                if letter == EPSILON {
                    let c = eps_cursor[q] as usize;
                    if c >= eps_offsets[q + 1] as usize || eps_targets[c] != edge_targets[k] {
                        return Err("ε CSR disagrees with the edge lists");
                    }
                    eps_cursor[q] += 1;
                } else {
                    if letter >= num_letters {
                        return Err("edge letter out of range");
                    }
                    let row = q * num_letters as usize + letter as usize;
                    let c = letter_cursor[row] as usize;
                    if c >= letter_offsets[row + 1] as usize || letter_targets[c] != edge_targets[k]
                    {
                        return Err("letter CSR disagrees with the edge lists");
                    }
                    letter_cursor[row] += 1;
                }
            }
        }
        if letter_cursor
            .iter()
            .enumerate()
            .any(|(row, &c)| c != letter_offsets[row + 1])
            || eps_cursor
                .iter()
                .enumerate()
                .any(|(q, &c)| c != eps_offsets[q + 1])
        {
            return Err("CSR contains edges absent from the edge lists");
        }
        Ok(CompiledNfa {
            num_states,
            num_letters,
            initial,
            letter_offsets,
            letter_targets,
            eps_offsets,
            eps_targets,
            edge_offsets,
            edge_letters,
            edge_targets,
        })
    }
}

/// The raw CSR arrays of a [`CompiledNfa`]
/// ([`CompiledNfa::to_parts`] / [`CompiledNfa::from_parts`]): the
/// label-free serialization form used by the on-disk artifact store.
/// Field meanings match the private fields of [`CompiledNfa`].
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct NfaParts {
    /// Number of states.
    pub num_states: u32,
    /// Number of letters of the compile-time alphabet.
    pub num_letters: u32,
    /// The initial states.
    pub initial: Vec<u32>,
    /// CSR offsets by `(state, letter)` row.
    pub letter_offsets: Vec<u32>,
    /// CSR targets by `(state, letter)` row.
    pub letter_targets: Vec<u32>,
    /// CSR offsets of ε-edges per state.
    pub eps_offsets: Vec<u32>,
    /// CSR targets of ε-edges per state.
    pub eps_targets: Vec<u32>,
    /// Insertion-order edge-list offsets per state.
    pub edge_offsets: Vec<u32>,
    /// Insertion-order edge letters (ε as [`EPSILON`]).
    pub edge_letters: Vec<LetterId>,
    /// Insertion-order edge targets.
    pub edge_targets: Vec<u32>,
}

/// A DFA compiled to a dense `u32` transition table over its interned
/// alphabet. Letter ids coincide with the source [`crate::Dfa`]'s letter
/// indices.
///
/// # Examples
///
/// ```
/// use tm_automata::Dfa;
/// let mut dfa = Dfa::new(vec!['a', 'b']);
/// let q0 = dfa.add_state();
/// let q1 = dfa.add_state();
/// dfa.set_initial(q0);
/// dfa.set_transition(q0, &'a', q1);
/// let compiled = dfa.compile();
/// let a = compiled.alphabet().get(&'a').unwrap();
/// assert_eq!(compiled.step(q0 as u32, a), Some(q1 as u32));
/// assert_eq!(compiled.step(q1 as u32, a), None);
/// ```
#[derive(Clone, Debug)]
pub struct CompiledDfa<L> {
    alphabet: Alphabet<L>,
    num_states: u32,
    initial: u32,
    /// `next[state * num_letters + letter]`, [`NO_STATE`] when undefined.
    next: Vec<u32>,
}

impl<L: Clone + Eq + Hash> CompiledDfa<L> {
    pub(crate) fn new(alphabet: Alphabet<L>, num_states: u32, initial: u32, next: Vec<u32>) -> Self {
        debug_assert_eq!(next.len(), num_states as usize * alphabet.len());
        CompiledDfa {
            alphabet,
            num_states,
            initial,
            next,
        }
    }

    /// Clones the letter table and dense transition table out of the
    /// automaton — the serialization form used by the on-disk artifact
    /// store (`tm-store`).
    pub fn to_parts(&self) -> DfaParts<L> {
        DfaParts {
            letters: self.alphabet.letters().to_vec(),
            num_states: self.num_states,
            initial: self.initial,
            next: self.next.clone(),
        }
    }

    /// Reassembles an automaton from [`CompiledDfa::to_parts`] output,
    /// verifying table shape, target ranges, and letter uniqueness
    /// before trusting the data.
    ///
    /// # Errors
    ///
    /// A static description of the first violated invariant.
    pub fn from_parts(parts: DfaParts<L>) -> Result<Self, &'static str> {
        let DfaParts {
            letters,
            num_states,
            initial,
            next,
        } = parts;
        let alphabet = Alphabet::from_letters(&letters);
        if alphabet.len() != letters.len() {
            return Err("duplicate letters in alphabet table");
        }
        let expected = (num_states as usize)
            .checked_mul(alphabet.len())
            .ok_or("transition table size overflows")?;
        if next.len() != expected {
            return Err("transition table has wrong size");
        }
        if num_states == 0 {
            return Err("automaton has no states");
        }
        if initial >= num_states {
            return Err("initial state out of range");
        }
        if next.iter().any(|&q| q != NO_STATE && q >= num_states) {
            return Err("transition target out of range");
        }
        Ok(CompiledDfa {
            alphabet,
            num_states,
            initial,
            next,
        })
    }
}

/// The raw tables of a [`CompiledDfa`] ([`CompiledDfa::to_parts`] /
/// [`CompiledDfa::from_parts`]): the serialization form used by the
/// on-disk artifact store. Letter ids are the indices into `letters`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DfaParts<L> {
    /// The interned alphabet, in letter-id order.
    pub letters: Vec<L>,
    /// Number of states.
    pub num_states: u32,
    /// The initial state.
    pub initial: u32,
    /// `next[state * letters.len() + letter]`, [`NO_STATE`] when
    /// undefined.
    pub next: Vec<u32>,
}

impl<L> CompiledDfa<L> {
    /// The interned alphabet (ids are the source DFA's letter indices).
    pub fn alphabet(&self) -> &Alphabet<L> {
        &self.alphabet
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.num_states as usize
    }

    /// The initial state.
    pub fn initial_state(&self) -> u32 {
        self.initial
    }

    /// Estimated heap footprint in bytes: the dense transition table
    /// plus the interned alphabet (convention of
    /// [`CompiledNfa::heap_bytes`]).
    pub fn heap_bytes(&self) -> usize {
        self.next.capacity() * std::mem::size_of::<u32>() + self.alphabet.heap_bytes()
    }

    /// Raw successor lookup: [`NO_STATE`] when the transition is missing.
    ///
    /// The inclusion inner loop uses this directly — one multiply, one
    /// add, one load; no hashing, no `Option` branching.
    #[inline]
    pub fn step_raw(&self, state: u32, letter: LetterId) -> u32 {
        self.next[state as usize * self.alphabet.len() + letter as usize]
    }

    /// Successor of `state` under `letter`, or `None` (reject).
    #[inline]
    pub fn step(&self, state: u32, letter: LetterId) -> Option<u32> {
        if (letter as usize) >= self.alphabet.len() {
            return None;
        }
        match self.step_raw(state, letter) {
            NO_STATE => None,
            next => Some(next),
        }
    }

    /// Whether the automaton accepts a word of letter ids.
    pub fn accepts(&self, word: &[LetterId]) -> bool {
        let mut q = self.initial;
        for &letter in word {
            match self.step(q, letter) {
                Some(next) => q = next,
                None => return false,
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dfa::Dfa;

    /// a*b automaton with an ε-shortcut (same shape as nfa.rs tests).
    fn sample() -> Nfa<char> {
        let mut nfa = Nfa::new();
        let q0 = nfa.add_state();
        let q1 = nfa.add_state();
        let q2 = nfa.add_state();
        nfa.set_initial(q0);
        nfa.add_transition(q0, Some('a'), q0);
        nfa.add_transition(q0, None, q1);
        nfa.add_transition(q1, Some('b'), q2);
        nfa
    }

    #[test]
    fn compiled_agrees_with_nfa() {
        let nfa = sample();
        let mut alphabet = Alphabet::new();
        let compiled = CompiledNfa::compile(&nfa, &mut alphabet);
        let to_ids = |w: &[char]| -> Option<Vec<LetterId>> {
            w.iter().map(|l| alphabet.get(l)).collect()
        };
        for word in [&[][..], &['a', 'a', 'b'][..], &['b'][..], &['b', 'b'][..]] {
            let ids = to_ids(word).unwrap();
            assert_eq!(compiled.accepts(&ids), nfa.accepts(word), "{word:?}");
        }
        // Letters never interned are rejected (if any step is needed).
        assert!(!compiled.accepts(&[77]));
    }

    #[test]
    fn post_is_per_letter() {
        let nfa = sample();
        let mut alphabet = Alphabet::new();
        let compiled = CompiledNfa::compile(&nfa, &mut alphabet);
        let a = alphabet.get(&'a').unwrap();
        let b = alphabet.get(&'b').unwrap();
        let init = compiled.initial_closure();
        assert_eq!(init.iter().collect::<Vec<_>>(), vec![0, 1]);
        assert_eq!(compiled.post(&init, a).iter().collect::<Vec<_>>(), vec![0, 1]);
        assert_eq!(compiled.post(&init, b).iter().collect::<Vec<_>>(), vec![2]);
        assert_eq!(compiled.successors(0, a), &[0]);
        assert_eq!(compiled.eps_successors(0), &[1]);
        assert!(compiled.successors(0, 55).is_empty());
    }

    #[test]
    fn edge_lists_preserve_insertion_order() {
        let nfa = sample();
        let mut alphabet = Alphabet::new();
        let compiled = CompiledNfa::compile(&nfa, &mut alphabet);
        let (letters, targets) = compiled.edges_from(0);
        assert_eq!(letters, &[alphabet.get(&'a').unwrap(), EPSILON]);
        assert_eq!(targets, &[0, 1]);
    }

    #[test]
    fn shared_alphabet_aligns_ids() {
        let mut left = Nfa::new();
        let s = left.add_state();
        left.set_initial(s);
        left.add_transition(s, Some('x'), s);
        let mut right = Nfa::new();
        let q = right.add_state();
        right.set_initial(q);
        right.add_transition(q, Some('y'), q);
        right.add_transition(q, Some('x'), q);
        let mut alphabet = Alphabet::new();
        let cl = CompiledNfa::compile(&left, &mut alphabet);
        let cr = CompiledNfa::compile(&right, &mut alphabet);
        let x = alphabet.get(&'x').unwrap();
        // `x` has one id in both automata even though `right` also has `y`.
        assert_eq!(cl.successors(0, x), &[0]);
        assert_eq!(cr.successors(0, x), &[0]);
        assert_eq!(cl.num_letters(), 1);
        assert_eq!(cr.num_letters(), 2);
    }

    #[test]
    fn heap_bytes_track_backing_vec_capacities() {
        let nfa = sample();
        let mut alphabet = Alphabet::new();
        let compiled = CompiledNfa::compile(&nfa, &mut alphabet);
        // Every edge is stored once in the insertion-order lists and once
        // in the CSR (letter or ε) arrays — two letter/target pairs per
        // edge — plus the per-state offset rows.
        let edges = nfa.num_transitions();
        let floor = (4 * edges + 2 * (nfa.num_states() + 1)) * std::mem::size_of::<u32>();
        assert!(compiled.heap_bytes() >= floor, "{}", compiled.heap_bytes());
        assert!(alphabet.heap_bytes() >= alphabet.len() * std::mem::size_of::<char>());

        // The DFA's figure tracks its dense table: states × letters.
        let small = {
            let mut dfa = Dfa::new(vec!['a', 'b']);
            let q = dfa.add_state();
            dfa.set_initial(q);
            dfa.compile()
        };
        let big = {
            let mut dfa = Dfa::new(vec!['a', 'b']);
            let q0 = dfa.add_state();
            dfa.set_initial(q0);
            for _ in 0..63 {
                dfa.add_state();
            }
            dfa.compile()
        };
        let table_floor =
            |d: &CompiledDfa<char>| d.num_states() * d.alphabet().len() * std::mem::size_of::<u32>();
        assert!(small.heap_bytes() >= table_floor(&small));
        assert!(big.heap_bytes() >= table_floor(&big));
        assert!(big.heap_bytes() > small.heap_bytes());
    }

    #[test]
    fn compiled_dfa_agrees_with_dfa() {
        let mut dfa = Dfa::new(vec!['a', 'b']);
        let q0 = dfa.add_state();
        let q1 = dfa.add_state();
        dfa.set_initial(q0);
        dfa.set_transition(q0, &'a', q0);
        dfa.set_transition(q0, &'b', q1);
        let compiled = dfa.compile();
        assert_eq!(compiled.num_states(), 2);
        assert_eq!(compiled.initial_state(), q0 as u32);
        // Letter ids coincide with DFA letter indices.
        assert_eq!(compiled.alphabet().get(&'a'), Some(0));
        assert_eq!(compiled.alphabet().get(&'b'), Some(1));
        assert!(compiled.accepts(&[0, 0, 1]));
        assert!(!compiled.accepts(&[1, 0]));
        assert_eq!(compiled.step(q1 as u32, 0), None);
        assert_eq!(compiled.step(q0 as u32, 9), None);
        assert_eq!(compiled.step_raw(q1 as u32, 0), NO_STATE);
    }
}
