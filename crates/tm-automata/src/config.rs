//! Workspace-wide model-checking configuration.
//!
//! The single home of the `TM_MODELCHECK_THREADS` parsing that the product
//! engine, the liveness engine, the `tm-checker` session API, and the
//! bench suite all share (it used to be re-derived at each call site).

/// Cap applied to the machine's available parallelism when
/// `TM_MODELCHECK_THREADS` is unset: model-checking frontiers rarely
/// profit from more workers than this, and CI machines over-report.
pub const DEFAULT_THREAD_CAP: usize = 8;

/// Parses a `TM_MODELCHECK_THREADS`-style value: a positive decimal
/// integer, surrounding whitespace tolerated. Returns `None` for
/// anything else (`0`, empty, signs, hex, garbage) — callers fall back
/// to [`default_threads`] rather than guessing what a malformed value
/// meant.
///
/// # Examples
///
/// ```
/// use tm_automata::parse_thread_count;
/// assert_eq!(parse_thread_count(" 4 "), Some(4));
/// assert_eq!(parse_thread_count("0"), None);
/// assert_eq!(parse_thread_count("four"), None);
/// ```
pub fn parse_thread_count(raw: &str) -> Option<usize> {
    match raw.trim().parse::<usize>() {
        Ok(n) if n >= 1 => Some(n),
        _ => None,
    }
}

/// The worker-pool size used when the environment does not specify one:
/// the machine's available parallelism, capped at
/// [`DEFAULT_THREAD_CAP`].
pub fn default_threads() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get().min(DEFAULT_THREAD_CAP))
}

/// The worker-pool size selected by the `TM_MODELCHECK_THREADS`
/// environment variable if set to a positive integer, otherwise
/// [`default_threads`]. `TM_MODELCHECK_THREADS=1` selects the
/// deterministic sequential engines everywhere; results are identical at
/// every value (the engines' determinism contract).
pub fn modelcheck_threads() -> usize {
    match std::env::var("TM_MODELCHECK_THREADS") {
        Ok(v) => parse_thread_count(&v).unwrap_or_else(default_threads),
        Err(_) => default_threads(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn positive_values_parse() {
        assert_eq!(parse_thread_count("1"), Some(1));
        assert_eq!(parse_thread_count("8"), Some(8));
        assert_eq!(parse_thread_count("  16\n"), Some(16));
    }

    #[test]
    fn zero_is_rejected() {
        // `0` must not select an empty pool; callers fall back to the
        // machine default instead.
        assert_eq!(parse_thread_count("0"), None);
        assert_eq!(parse_thread_count(" 0 "), None);
    }

    #[test]
    fn malformed_values_are_rejected() {
        for raw in ["", " ", "four", "-2", "0x4", "2.0", "1e3", "4 threads"] {
            assert_eq!(parse_thread_count(raw), None, "{raw:?}");
        }
        // `usize::from_str` tolerates an explicit plus sign; keep the
        // historical acceptance rather than special-casing it away.
        assert_eq!(parse_thread_count("+3"), Some(3));
    }

    #[test]
    fn default_is_positive_and_capped() {
        let n = default_threads();
        assert!(n >= 1);
        assert!(n <= DEFAULT_THREAD_CAP);
    }

    #[test]
    fn env_fallback_is_sane() {
        // Whatever the harness sets (CI pins 1 and 4), the result is a
        // usable pool size.
        assert!(modelcheck_threads() >= 1);
    }
}
