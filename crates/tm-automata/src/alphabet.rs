//! Label interning: a bijection between automaton labels and dense
//! [`LetterId`]s.
//!
//! Every checker in this workspace ultimately compares labels drawn from
//! a small finite alphabet (the statement alphabet `Ŝ` has `n·(2k + 2)`
//! letters). Hashing and cloning those labels inside inclusion-check
//! inner loops is pure overhead: interning them once up front turns every
//! later label operation into `u32` arithmetic, and the compiled automata
//! ([`crate::CompiledNfa`], [`crate::CompiledDfa`]) index their
//! transition arrays directly by letter id.

use std::hash::Hash;

use crate::fxhash::FxHashMap;

/// Dense index of a letter within an [`Alphabet`].
pub type LetterId = u32;

/// An order-preserving interner mapping labels to dense `u32` ids.
///
/// Ids are assigned in first-intern order, so an alphabet built from a
/// [`crate::Dfa`]'s letters assigns exactly the DFA's letter indices —
/// the property the index-based inclusion check relies on.
///
/// # Examples
///
/// ```
/// use tm_automata::Alphabet;
/// let mut alphabet = Alphabet::new();
/// let a = alphabet.intern(&'a');
/// let b = alphabet.intern(&'b');
/// assert_eq!(alphabet.intern(&'a'), a);
/// assert_eq!((a, b), (0, 1));
/// assert_eq!(alphabet.letter(b), &'b');
/// ```
#[derive(Clone, Debug, Default)]
pub struct Alphabet<L> {
    letters: Vec<L>,
    index: FxHashMap<L, LetterId>,
}

impl<L: Clone + Eq + Hash> Alphabet<L> {
    /// Creates an empty alphabet.
    pub fn new() -> Self {
        Alphabet {
            letters: Vec::new(),
            index: FxHashMap::default(),
        }
    }

    /// Interns every label of `letters` in order.
    pub fn from_letters<'a, I: IntoIterator<Item = &'a L>>(letters: I) -> Self
    where
        L: 'a,
    {
        let mut alphabet = Alphabet::new();
        for letter in letters {
            alphabet.intern(letter);
        }
        alphabet
    }

    /// The id of `letter`, interning it if new (cloning only then).
    ///
    /// # Panics
    ///
    /// Panics if the alphabet would exceed `u32::MAX - 1` letters — the
    /// last `u32` value is reserved so no id can collide with the
    /// [`crate::EPSILON`] sentinel.
    pub fn intern(&mut self, letter: &L) -> LetterId {
        if let Some(&id) = self.index.get(letter) {
            return id;
        }
        let id = LetterId::try_from(self.letters.len()).expect("alphabet exceeds u32 letters");
        assert_ne!(id, u32::MAX, "alphabet exhausts u32 letter ids");
        self.letters.push(letter.clone());
        self.index.insert(letter.clone(), id);
        id
    }

    /// The id of `letter`, or `None` if it was never interned.
    pub fn get(&self, letter: &L) -> Option<LetterId> {
        self.index.get(letter).copied()
    }
}

impl<L> Alphabet<L> {
    /// The label behind `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn letter(&self, id: LetterId) -> &L {
        &self.letters[id as usize]
    }

    /// All letters in id order.
    pub fn letters(&self) -> &[L] {
        &self.letters
    }

    /// Number of interned letters.
    pub fn len(&self) -> usize {
        self.letters.len()
    }

    /// Estimated heap footprint in bytes: the letter `Vec`'s capacity
    /// plus the interning table, letters counted at their inline size
    /// (see the crate's heap-accounting convention on
    /// [`crate::CompiledNfa::heap_bytes`]).
    pub fn heap_bytes(&self) -> usize {
        self.letters.capacity() * std::mem::size_of::<L>()
            + crate::fxhash::map_heap_bytes(&self.index)
    }

    /// `true` if no letter was interned yet.
    pub fn is_empty(&self) -> bool {
        self.letters.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent_and_dense() {
        let mut alphabet = Alphabet::new();
        let ids: Vec<LetterId> = ["x", "y", "x", "z", "y"]
            .iter()
            .map(|l| alphabet.intern(l))
            .collect();
        assert_eq!(ids, vec![0, 1, 0, 2, 1]);
        assert_eq!(alphabet.len(), 3);
        assert_eq!(alphabet.letters(), &["x", "y", "z"]);
    }

    #[test]
    fn from_letters_preserves_order() {
        let alphabet = Alphabet::from_letters(&['c', 'a', 'b']);
        assert_eq!(alphabet.get(&'c'), Some(0));
        assert_eq!(alphabet.get(&'b'), Some(2));
        assert_eq!(alphabet.get(&'z'), None);
        assert!(!alphabet.is_empty());
    }

    #[test]
    fn letter_round_trips() {
        let mut alphabet = Alphabet::new();
        let id = alphabet.intern(&42u64);
        assert_eq!(*alphabet.letter(id), 42);
    }
}
