//! Labelled directed graphs, strongly connected components, and
//! constrained closed-walk construction — the machinery behind the
//! liveness checks of §6.
//!
//! A liveness violation is a reachable *loop* in a TM algorithm's
//! transition system whose edges satisfy certain constraints (e.g. "all
//! statements of one thread, at least one abort, no commit"). Within one
//! SCC any set of edges lies on a common closed walk, so the search
//! reduces to: find an SCC (of a filtered subgraph) containing one edge of
//! each required kind, then stitch the walk together with BFS paths.

use std::collections::VecDeque;

/// A directed graph with labelled edges and states `0..num_states`.
///
/// # Examples
///
/// ```
/// use tm_automata::LabeledGraph;
/// let mut g = LabeledGraph::new(2);
/// g.add_edge(0, 'x', 1);
/// g.add_edge(1, 'y', 0);
/// assert_eq!(g.num_edges(), 2);
/// ```
#[derive(Clone, Debug)]
pub struct LabeledGraph<L> {
    succ: Vec<Vec<(L, usize)>>,
}

impl<L> LabeledGraph<L> {
    /// Creates a graph with `num_states` states and no edges.
    pub fn new(num_states: usize) -> Self {
        LabeledGraph {
            succ: (0..num_states).map(|_| Vec::new()).collect(),
        }
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.succ.len()
    }

    /// Total number of edges.
    pub fn num_edges(&self) -> usize {
        self.succ.iter().map(Vec::len).sum()
    }

    /// Adds an edge `from --label--> to`.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is out of range.
    pub fn add_edge(&mut self, from: usize, label: L, to: usize) {
        assert!(to < self.succ.len(), "edge target out of range");
        self.succ[from].push((label, to));
    }

    /// The outgoing edges of a state.
    pub fn edges_from(&self, state: usize) -> &[(L, usize)] {
        &self.succ[state]
    }

    /// Iterates over all edges as `(from, &label, to)`.
    pub fn edges(&self) -> impl Iterator<Item = (usize, &L, usize)> {
        self.succ
            .iter()
            .enumerate()
            .flat_map(|(from, out)| out.iter().map(move |(l, to)| (from, l, *to)))
    }
}

impl<L: Clone> LabeledGraph<L> {
    /// The subgraph containing only edges accepted by `keep`.
    pub fn filtered<F: Fn(usize, &L, usize) -> bool>(&self, keep: F) -> LabeledGraph<L> {
        let mut g = LabeledGraph::new(self.num_states());
        for (from, label, to) in self.edges() {
            if keep(from, label, to) {
                g.add_edge(from, label.clone(), to);
            }
        }
        g
    }

    /// A shortest path (sequence of `(from, label, to)` edges) from `from`
    /// to some state satisfying `is_target`, or `None`. A path of length 0
    /// is returned if `from` itself is a target.
    pub fn shortest_path_to<F: Fn(usize) -> bool>(
        &self,
        from: usize,
        is_target: F,
    ) -> Option<Vec<(usize, L, usize)>> {
        if is_target(from) {
            return Some(Vec::new());
        }
        let mut pred: Vec<Option<(usize, L)>> = vec![None; self.num_states()];
        let mut seen = vec![false; self.num_states()];
        seen[from] = true;
        let mut queue = VecDeque::from([from]);
        while let Some(q) = queue.pop_front() {
            for (label, to) in &self.succ[q] {
                if !seen[*to] {
                    seen[*to] = true;
                    pred[*to] = Some((q, label.clone()));
                    if is_target(*to) {
                        let mut path = Vec::new();
                        let mut at = *to;
                        while let Some((p, l)) = pred[at].take() {
                            path.push((p, l, at));
                            at = p;
                        }
                        path.reverse();
                        return Some(path);
                    }
                    queue.push_back(*to);
                }
            }
        }
        None
    }
}

/// The strongly connected components of a graph.
#[derive(Clone, Debug)]
pub struct Sccs {
    /// `component[v]` is the SCC index of state `v`.
    component: Vec<usize>,
    /// Number of components.
    count: usize,
}

impl Sccs {
    /// SCC index of a state.
    pub fn component_of(&self, state: usize) -> usize {
        self.component[state]
    }

    /// Number of components.
    pub fn count(&self) -> usize {
        self.count
    }

    /// `true` if `a` and `b` are in the same SCC.
    pub fn same_component(&self, a: usize, b: usize) -> bool {
        self.component[a] == self.component[b]
    }
}

/// Computes the strongly connected components with an iterative Tarjan
/// algorithm (explicit stack; safe for deep graphs).
pub fn strongly_connected_components<L>(g: &LabeledGraph<L>) -> Sccs {
    const UNVISITED: usize = usize::MAX;
    let n = g.num_states();
    let mut index = vec![UNVISITED; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut component = vec![UNVISITED; n];
    let mut next_index = 0usize;
    let mut count = 0usize;

    // Work stack frames: (node, next child position).
    let mut work: Vec<(usize, usize)> = Vec::new();
    for root in 0..n {
        if index[root] != UNVISITED {
            continue;
        }
        work.push((root, 0));
        while let Some(&mut (v, ref mut child)) = work.last_mut() {
            if *child == 0 {
                index[v] = next_index;
                low[v] = next_index;
                next_index += 1;
                stack.push(v);
                on_stack[v] = true;
            }
            if let Some((_, w)) = g.edges_from(v).get(*child).map(|(l, w)| (l, *w)) {
                *child += 1;
                if index[w] == UNVISITED {
                    work.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                // All children done: close v.
                if low[v] == index[v] {
                    loop {
                        let w = stack.pop().expect("tarjan stack underflow");
                        on_stack[w] = false;
                        component[w] = count;
                        if w == v {
                            break;
                        }
                    }
                    count += 1;
                }
                let (v, _) = work.pop().expect("frame exists");
                if let Some(&mut (u, _)) = work.last_mut() {
                    low[u] = low[u].min(low[v]);
                }
            }
        }
    }
    Sccs { component, count }
}

/// A closed walk visiting each of the `required` edges at least once,
/// inside the SCC subgraph containing them. Returns the walk as a sequence
/// of edges starting and ending at the source of the first required edge,
/// or `None` if the required edges do not all lie in one SCC of `g`.
///
/// `required` holds `(from, label, to)` triples that must be edges of `g`.
pub fn closed_walk_through<L: Clone + Eq>(
    g: &LabeledGraph<L>,
    required: &[(usize, L, usize)],
) -> Option<Vec<(usize, L, usize)>> {
    let (first, rest) = required.split_first()?;
    let sccs = strongly_connected_components(g);
    let comp = sccs.component_of(first.0);
    // All endpoints must share the SCC (otherwise no closed walk exists).
    for (from, _, to) in required {
        if sccs.component_of(*from) != comp || sccs.component_of(*to) != comp {
            return None;
        }
    }
    // Restrict to the SCC so BFS paths stay inside it.
    let inside = g.filtered(|from, _, to| {
        sccs.component_of(from) == comp && sccs.component_of(to) == comp
    });
    let mut walk: Vec<(usize, L, usize)> = vec![first.clone()];
    let mut at = first.2;
    for edge in rest {
        let path = inside.shortest_path_to(at, |s| s == edge.0)?;
        walk.extend(path);
        walk.push(edge.clone());
        at = edge.2;
    }
    let back = inside.shortest_path_to(at, |s| s == first.0)?;
    walk.extend(back);
    Some(walk)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring(n: usize) -> LabeledGraph<usize> {
        let mut g = LabeledGraph::new(n);
        for i in 0..n {
            g.add_edge(i, i, (i + 1) % n);
        }
        g
    }

    #[test]
    fn ring_is_one_scc() {
        let sccs = strongly_connected_components(&ring(5));
        assert_eq!(sccs.count(), 1);
        assert!(sccs.same_component(0, 4));
    }

    #[test]
    fn dag_has_singleton_sccs() {
        let mut g = LabeledGraph::new(3);
        g.add_edge(0, 'x', 1);
        g.add_edge(1, 'y', 2);
        let sccs = strongly_connected_components(&g);
        assert_eq!(sccs.count(), 3);
        assert!(!sccs.same_component(0, 1));
    }

    #[test]
    fn two_cycles_joined_by_bridge() {
        let mut g = LabeledGraph::new(4);
        g.add_edge(0, 'a', 1);
        g.add_edge(1, 'b', 0);
        g.add_edge(1, 'c', 2); // bridge
        g.add_edge(2, 'd', 3);
        g.add_edge(3, 'e', 2);
        let sccs = strongly_connected_components(&g);
        assert_eq!(sccs.count(), 2);
        assert!(sccs.same_component(0, 1));
        assert!(sccs.same_component(2, 3));
        assert!(!sccs.same_component(1, 2));
    }

    #[test]
    fn shortest_path_finds_bfs_route() {
        let g = ring(6);
        let path = g.shortest_path_to(0, |s| s == 3).unwrap();
        assert_eq!(path.len(), 3);
        assert_eq!(path[0], (0, 0, 1));
        assert_eq!(path[2].2, 3);
        assert!(g.shortest_path_to(0, |_| false).is_none());
        assert_eq!(g.shortest_path_to(2, |s| s == 2).unwrap().len(), 0);
    }

    #[test]
    fn closed_walk_visits_required_edges() {
        let g = ring(4);
        let required = vec![(1usize, 1usize, 2usize), (3, 3, 0)];
        let walk = closed_walk_through(&g, &required).unwrap();
        // Walk starts at 1, ends back at 1, uses both required edges.
        assert_eq!(walk.first().unwrap().0, 1);
        assert_eq!(walk.last().unwrap().2, 1);
        for edge in &required {
            assert!(walk.contains(edge));
        }
    }

    #[test]
    fn closed_walk_rejects_cross_scc_requirements() {
        let mut g = LabeledGraph::new(4);
        g.add_edge(0, 'a', 1);
        g.add_edge(1, 'b', 0);
        g.add_edge(1, 'x', 2);
        g.add_edge(2, 'c', 3);
        g.add_edge(3, 'd', 2);
        let required = vec![(0, 'a', 1), (2, 'c', 3)];
        assert!(closed_walk_through(&g, &required).is_none());
    }

    #[test]
    fn filtered_drops_edges() {
        let g = ring(3);
        let f = g.filtered(|from, _, _| from != 1);
        assert_eq!(f.num_edges(), 2);
    }
}
