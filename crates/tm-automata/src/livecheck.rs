//! Compiled liveness engine: CSR run graphs, mask-filtered SCC search,
//! and deterministic parallel fan-out of independent loop queries.
//!
//! The paper reduces each liveness property (§6, Theorem 5) to the absence
//! of a certain *loop* in the run-level transition system of the TM
//! applied to the most general program. The seed checker materializes that
//! system as a boxed labelled edge list ([`crate::LabeledGraph`]) and, for
//! every thread subset, **clones** a filtered subgraph and reruns Tarjan
//! on it — `2^n` copies of the graph for the livelock check alone.
//!
//! This module is the liveness counterpart of the on-the-fly product
//! engine in `product.rs`:
//!
//! * [`CompiledRunGraph`] explores a [`RunGraphSource`] breadth-first and
//!   compiles it **directly** into CSR adjacency — `row_start` /
//!   `edge_target` / `edge_label` arrays — with labels interned to dense
//!   ids and a precomputed per-edge [`EdgeMask`] recording the label's
//!   class bits (thread, commit, abort, emits-statement). The labelled
//!   edge list of the seed path is never built.
//! * [`CompiledRunGraph::sccs_masked`] runs an iterative Tarjan that takes
//!   an [`EdgeFilter`] (two mask words) instead of a cloned subgraph; all
//!   scratch state lives in a reusable [`LiveScratch`] arena, so the
//!   `2^n` livelock subsets and the per-thread obstruction / wait passes
//!   share one graph and one allocation.
//! * [`CompiledRunGraph::find_loop`] answers one [`LoopQuery`] — find a
//!   reachable loop containing, for each required mask, an edge matching
//!   it — and extracts the violating lasso (shortest prefix from the
//!   initial state plus a closed walk through the required edges) straight
//!   from the CSR. Edge enumeration order equals the seed path's
//!   (state-major, insertion order per state), so verdicts **and lassos**
//!   are identical to the reference checker's.
//! * [`CompiledRunGraph::find_first_loop`] fans independent queries out
//!   over a thread pool and deterministically selects the violation of the
//!   smallest query index — verdicts and lasso words are identical at
//!   every thread count.

use std::hash::Hash;
use std::sync::atomic::{AtomicUsize, Ordering};

use tm_obs::{Phase, PhaseTimer};

use crate::budget::{EngineError, QueryBudget};
use crate::fxhash::FxHashMap;
use crate::pool::Executor;

/// How many units of work (BFS visits during build, Tarjan iterations
/// during SCC search) pass between deadline/cancellation checks.
const INTERRUPT_STRIDE: usize = 4096;

/// Maximum thread count (of the checked TM instance, not the worker pool)
/// representable in an [`EdgeMask`]: thread ids occupy the low bits,
/// one-hot.
pub const MAX_MASK_THREADS: usize = 8;

/// Per-edge class bits: one-hot thread id in the low
/// [`MAX_MASK_THREADS`] bits, then the commit / abort / emits-statement
/// flags.
pub type EdgeMask = u16;

/// [`EdgeMask`] bit: the edge completes a commit command.
pub const MASK_COMMIT: EdgeMask = 1 << MAX_MASK_THREADS;
/// [`EdgeMask`] bit: the edge aborts a transaction.
pub const MASK_ABORT: EdgeMask = 1 << (MAX_MASK_THREADS + 1);
/// [`EdgeMask`] bit: the edge emits a word-level statement (completions
/// and aborts do; internal `⊥`-response steps do not).
pub const MASK_EMITS: EdgeMask = 1 << (MAX_MASK_THREADS + 2);
/// [`EdgeMask`] bits covering every representable thread.
pub const MASK_ALL_THREADS: EdgeMask = (1 << MAX_MASK_THREADS) - 1;

/// The classification of a run-graph label, provided once per distinct
/// label by [`RunGraphSource::classify`] and folded into the per-edge
/// [`EdgeMask`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct LabelClass {
    /// 0-based id of the thread taking the step.
    pub thread: usize,
    /// `true` if the step completes a commit command.
    pub is_commit: bool,
    /// `true` if the step aborts a transaction.
    pub is_abort: bool,
    /// `true` if the step emits a word-level statement.
    pub emits_statement: bool,
}

impl LabelClass {
    /// Packs the class into an [`EdgeMask`].
    ///
    /// # Panics
    ///
    /// Panics if `thread >= MAX_MASK_THREADS`.
    pub fn mask(self) -> EdgeMask {
        assert!(
            self.thread < MAX_MASK_THREADS,
            "thread id {} exceeds the {MAX_MASK_THREADS}-thread mask capacity",
            self.thread
        );
        let mut mask = 1 << self.thread;
        if self.is_commit {
            mask |= MASK_COMMIT;
        }
        if self.is_abort {
            mask |= MASK_ABORT;
        }
        if self.emits_statement {
            mask |= MASK_EMITS;
        }
        mask
    }
}

/// A lazily explorable run-level transition system: the input of
/// [`CompiledRunGraph::build`]. Implemented by the TM steppers
/// (`tm_algorithms::MostGeneralRunSource`) so the run graph is compiled
/// while it is discovered, without an intermediate edge list.
pub trait RunGraphSource {
    /// Structured state type.
    type State: Clone + Eq + Hash;
    /// Edge label type (interned by the builder).
    type Label: Clone + Eq + Hash;

    /// The initial state.
    fn initial_state(&self) -> Self::State;

    /// Appends all steps enabled in `state` as `(label, successor)` pairs,
    /// in a fixed order. The order defines state numbering and edge
    /// enumeration order, and hence lasso identity.
    fn successors(&self, state: &Self::State, out: &mut Vec<(Self::Label, Self::State)>);

    /// Classifies a label; called once per distinct label at interning
    /// time.
    fn classify(&self, label: &Self::Label) -> LabelClass;
}

/// An edge predicate over [`EdgeMask`]s: the compiled form of the seed
/// path's `filtered(|_, l, _| ...)` closures. An edge with mask `m` is
/// kept iff
///
/// * `m & keep_any != 0` (some required bit present — e.g. "the thread is
///   in the subset"), and
/// * `forbid_all == 0` or `m & forbid_all != forbid_all` (not all
///   forbidden bits present — e.g. "not a commit", or "not a commit *of
///   this thread*" when the forbid mask pairs a thread bit with
///   [`MASK_COMMIT`]).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct EdgeFilter {
    /// Keep only edges sharing a bit with this mask.
    pub keep_any: EdgeMask,
    /// Drop edges containing **all** bits of this mask (`0` forbids
    /// nothing).
    pub forbid_all: EdgeMask,
}

impl EdgeFilter {
    /// `true` if an edge with mask `mask` survives the filter.
    #[inline]
    pub fn keeps(self, mask: EdgeMask) -> bool {
        mask & self.keep_any != 0
            && (self.forbid_all == 0 || mask & self.forbid_all != self.forbid_all)
    }
}

/// How [`CompiledRunGraph::find_loop`] picks the loop to report among the
/// candidates, mirroring the seed checker's two search shapes so lassos
/// come out identical.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LoopSelection {
    /// Single requirement: the first matching cyclic edge in edge
    /// enumeration order, whatever SCC it lies in (the seed's
    /// `find_cyclic_edge`).
    FirstEdge,
    /// Multiple requirements: the first SCC in component-index order whose
    /// cyclic edges cover every required mask, each requirement resolved
    /// to its first matching edge (the seed's per-component livelock
    /// loop).
    FirstComponent,
}

/// One liveness pass: search the [`EdgeFilter`]-induced subgraph for a
/// loop containing, for each entry of `required`, an edge whose mask has
/// all of that entry's bits.
#[derive(Clone, Debug)]
pub struct LoopQuery {
    /// The subgraph to search.
    pub filter: EdgeFilter,
    /// Edge-class requirements; each must be witnessed by a kept cyclic
    /// edge (`mask & required == required`) on one common loop.
    pub required: Vec<EdgeMask>,
    /// Candidate-selection mode (determines lasso identity, not the
    /// verdict).
    pub selection: LoopSelection,
}

/// A liveness counterexample in compiled form: label sequences of the
/// shortest prefix from the initial state and of the closed walk.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CompiledLasso<L> {
    /// Labels of the run from the initial state to the loop entry.
    pub prefix: Vec<L>,
    /// Labels of the loop (non-empty).
    pub cycle: Vec<L>,
}

const UNVISITED: u32 = u32::MAX;

/// Reusable scratch arena for [`CompiledRunGraph::sccs_masked`],
/// [`CompiledRunGraph::find_loop`] and the BFS walks of lasso extraction:
/// one allocation shared by every mask-filtered pass over one graph.
#[derive(Default, Debug)]
pub struct LiveScratch {
    // Tarjan state.
    index: Vec<u32>,
    low: Vec<u32>,
    on_stack: Vec<bool>,
    stack: Vec<u32>,
    work: Vec<(u32, u32)>,
    component: Vec<u32>,
    count: u32,
    // Per-(component, requirement) first-edge table of the
    // `FirstComponent` search.
    first_match: Vec<u32>,
    // Generation-stamped BFS state (no O(n) clear between walks).
    bfs_seen: Vec<u32>,
    bfs_pred: Vec<(u32, u32)>,
    bfs_queue: Vec<u32>,
    bfs_generation: u32,
}

impl LiveScratch {
    /// The SCC index of `state` under the most recent
    /// [`CompiledRunGraph::sccs_masked`] run.
    pub fn component_of(&self, state: usize) -> usize {
        self.component[state] as usize
    }

    /// Number of SCCs of the most recent run.
    pub fn num_components(&self) -> usize {
        self.count as usize
    }
}

/// A run-level transition graph compiled to CSR with interned labels and
/// per-edge class masks — the liveness counterpart of
/// [`crate::CompiledNfa`]. Built on the fly from a [`RunGraphSource`];
/// state 0 is the initial state, states and per-state edges are numbered
/// in discovery order (identical to the seed exploration's, so component
/// indices, loop choices, and lassos match the reference checker).
#[derive(Clone, Debug)]
pub struct CompiledRunGraph<L> {
    labels: Vec<L>,
    /// CSR row boundaries: edges of state `v` are
    /// `row_start[v]..row_start[v + 1]`.
    row_start: Vec<u32>,
    edge_from: Vec<u32>,
    edge_target: Vec<u32>,
    edge_label: Vec<u32>,
    edge_mask: Vec<EdgeMask>,
}

/// The raw CSR arrays of a [`CompiledRunGraph`]
/// ([`CompiledRunGraph::to_parts`] / [`CompiledRunGraph::from_parts`]):
/// the serialization form used by the on-disk artifact store. Field
/// meanings match the private fields of [`CompiledRunGraph`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RunGraphParts<L> {
    /// Interned labels, in id order.
    pub labels: Vec<L>,
    /// CSR row boundaries (length `num_states + 1`, starting at 0).
    pub row_start: Vec<u32>,
    /// Source state per edge ( = its CSR row).
    pub edge_from: Vec<u32>,
    /// Target state per edge.
    pub edge_target: Vec<u32>,
    /// Label id per edge (index into `labels`).
    pub edge_label: Vec<u32>,
    /// Class mask per edge (uniform per label id).
    pub edge_mask: Vec<EdgeMask>,
}

impl<L: Clone + Eq + Hash> CompiledRunGraph<L> {
    /// Explores `source` breadth-first and compiles the reachable run
    /// graph, returning it with the interning table of structured states
    /// (`states[id]` is the state behind graph node `id`).
    ///
    /// # Errors
    ///
    /// [`EngineError::StateLimit`] if the reachable state space exceeds
    /// `max_states`.
    pub fn build<S: RunGraphSource<Label = L>>(
        source: &S,
        max_states: usize,
    ) -> Result<(Self, Vec<S::State>), EngineError> {
        Self::build_budget(source, &QueryBudget::new(max_states))
    }

    /// [`CompiledRunGraph::build`] under a full [`QueryBudget`]: the state
    /// bound is checked before every intern, the deadline/cancellation
    /// every `INTERRUPT_STRIDE` expanded states.
    ///
    /// # Errors
    ///
    /// [`EngineError::StateLimit`], [`EngineError::Deadline`], or
    /// [`EngineError::Cancelled`] per the budget.
    pub fn build_budget<S: RunGraphSource<Label = L>>(
        source: &S,
        budget: &QueryBudget,
    ) -> Result<(Self, Vec<S::State>), EngineError> {
        let mut span = PhaseTimer::start(Phase::RunGraphBuild);
        let mut label_ids: FxHashMap<L, u32> = FxHashMap::default();
        let mut labels: Vec<L> = Vec::new();
        let mut label_masks: Vec<EdgeMask> = Vec::new();

        let mut state_ids: FxHashMap<S::State, u32> = FxHashMap::default();
        let mut states: Vec<S::State> = Vec::new();
        let init = source.initial_state();
        state_ids.insert(init.clone(), 0);
        states.push(init);

        let mut row_start: Vec<u32> = vec![0];
        let mut edge_from: Vec<u32> = Vec::new();
        let mut edge_target: Vec<u32> = Vec::new();
        let mut edge_label: Vec<u32> = Vec::new();
        let mut edge_mask: Vec<EdgeMask> = Vec::new();

        // States are expanded in id (FIFO) order, so CSR rows are emitted
        // sequentially and the edge arrays need no sorting pass.
        let mut buf: Vec<(L, S::State)> = Vec::new();
        let mut head = 0usize;
        while head < states.len() {
            if head.is_multiple_of(INTERRUPT_STRIDE) {
                budget.check_interrupt()?;
            }
            buf.clear();
            source.successors(&states[head], &mut buf);
            for (label, succ) in buf.drain(..) {
                let lid = match label_ids.get(&label) {
                    Some(&id) => id,
                    None => {
                        let id = u32::try_from(labels.len()).expect("more than u32::MAX labels");
                        let mask = source.classify(&label).mask();
                        label_ids.insert(label.clone(), id);
                        labels.push(label);
                        label_masks.push(mask);
                        id
                    }
                };
                let to = match state_ids.get(&succ) {
                    Some(&id) => id,
                    None => {
                        budget.check_states(states.len())?;
                        let id =
                            u32::try_from(states.len()).expect("more than u32::MAX run states");
                        state_ids.insert(succ.clone(), id);
                        states.push(succ);
                        id
                    }
                };
                edge_from.push(head as u32);
                edge_target.push(to);
                edge_label.push(lid);
                edge_mask.push(label_masks[lid as usize]);
            }
            row_start.push(u32::try_from(edge_target.len()).expect("more than u32::MAX edges"));
            head += 1;
        }
        // Rows exist for exactly the discovered states.
        debug_assert_eq!(row_start.len(), states.len() + 1);
        span.set_value(states.len() as u64);
        Ok((
            CompiledRunGraph {
                labels,
                row_start,
                edge_from,
                edge_target,
                edge_label,
                edge_mask,
            },
            states,
        ))
    }
}

impl<L> CompiledRunGraph<L> {
    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.row_start.len() - 1
    }

    /// Total number of edges.
    pub fn num_edges(&self) -> usize {
        self.edge_target.len()
    }

    /// Number of distinct (interned) labels.
    pub fn num_labels(&self) -> usize {
        self.labels.len()
    }

    /// Estimated heap footprint in bytes: the sum of the CSR arrays'
    /// capacities, labels counted at their inline size (convention of
    /// [`crate::CompiledNfa::heap_bytes`]). For the large graphs a
    /// session budget cares about — millions of run states, a handful of
    /// labels — the figure is dominated by the exact `u32` arrays.
    pub fn heap_bytes(&self) -> usize {
        let u32s = self.row_start.capacity()
            + self.edge_from.capacity()
            + self.edge_target.capacity()
            + self.edge_label.capacity();
        u32s * std::mem::size_of::<u32>()
            + self.edge_mask.capacity() * std::mem::size_of::<EdgeMask>()
            + self.labels.capacity() * std::mem::size_of::<L>()
    }

    /// Iterates over all edges as `(from, &label, to)`, in the engine's
    /// canonical enumeration order (state-major, discovery order per
    /// state) — the order loop candidates are selected in.
    pub fn edges(&self) -> impl Iterator<Item = (usize, &L, usize)> + '_ {
        (0..self.num_edges()).map(move |e| {
            (
                self.edge_from[e] as usize,
                &self.labels[self.edge_label[e] as usize],
                self.edge_target[e] as usize,
            )
        })
    }

    /// The class mask of edge `e` (edges numbered as in
    /// [`CompiledRunGraph::edges`]).
    pub fn edge_mask(&self, e: usize) -> EdgeMask {
        self.edge_mask[e]
    }

    /// Clones the raw CSR arrays out of the graph — the serialization
    /// form used by the on-disk artifact store (`tm-store`).
    pub fn to_parts(&self) -> RunGraphParts<L>
    where
        L: Clone,
    {
        RunGraphParts {
            labels: self.labels.clone(),
            row_start: self.row_start.clone(),
            edge_from: self.edge_from.clone(),
            edge_target: self.edge_target.clone(),
            edge_label: self.edge_label.clone(),
            edge_mask: self.edge_mask.clone(),
        }
    }

    /// Reassembles a run graph from raw CSR arrays
    /// ([`CompiledRunGraph::to_parts`]), verifying every structural
    /// invariant [`CompiledRunGraph::build_budget`] establishes before
    /// trusting the data: CSR shape and monotonicity, per-row
    /// `edge_from` agreement, id ranges, and one uniform class mask per
    /// interned label (masks are a per-label property of the builder).
    /// A graph that passes is behaviourally indistinguishable from a
    /// freshly built one — SCC indices, loop choices, and lassos are
    /// functions of these arrays alone.
    ///
    /// # Errors
    ///
    /// A static description of the first violated invariant.
    pub fn from_parts(parts: RunGraphParts<L>) -> Result<Self, &'static str> {
        let RunGraphParts {
            labels,
            row_start,
            edge_from,
            edge_target,
            edge_label,
            edge_mask,
        } = parts;
        if row_start.is_empty() || row_start[0] != 0 {
            return Err("CSR rows do not start at 0");
        }
        if row_start.windows(2).any(|w| w[0] > w[1]) {
            return Err("CSR offsets are not monotone");
        }
        let num_states = row_start.len() - 1;
        let num_edges = *row_start.last().expect("nonempty") as usize;
        if edge_from.len() != num_edges
            || edge_target.len() != num_edges
            || edge_label.len() != num_edges
            || edge_mask.len() != num_edges
        {
            return Err("edge arrays do not cover the CSR rows");
        }
        for v in 0..num_states {
            let row = row_start[v] as usize..row_start[v + 1] as usize;
            if edge_from[row].iter().any(|&f| f as usize != v) {
                return Err("edge source disagrees with its CSR row");
            }
        }
        if edge_target.iter().any(|&t| t as usize >= num_states) {
            return Err("edge target out of range");
        }
        if edge_label.iter().any(|&l| l as usize >= labels.len()) {
            return Err("edge label out of range");
        }
        let mut label_masks: Vec<Option<EdgeMask>> = vec![None; labels.len()];
        for e in 0..num_edges {
            let slot = &mut label_masks[edge_label[e] as usize];
            match *slot {
                None => *slot = Some(edge_mask[e]),
                Some(mask) if mask == edge_mask[e] => {}
                Some(_) => return Err("edge mask varies within one label"),
            }
        }
        Ok(CompiledRunGraph {
            labels,
            row_start,
            edge_from,
            edge_target,
            edge_label,
            edge_mask,
        })
    }

    /// Computes the SCCs of the subgraph induced by `filter` with an
    /// iterative Tarjan over the CSR, storing the result in `scratch`
    /// (query it via [`LiveScratch::component_of`] /
    /// [`LiveScratch::num_components`]). No subgraph is materialized and
    /// no allocation happens once the arena has grown to the graph's
    /// size.
    ///
    /// Component indices are identical to running the reference
    /// [`crate::strongly_connected_components`] on the materialized
    /// filtered subgraph: roots are tried in state order and edges are
    /// visited in enumeration order, skipping filtered ones.
    pub fn sccs_masked(&self, filter: EdgeFilter, scratch: &mut LiveScratch) {
        self.sccs_masked_budget(filter, scratch, &QueryBudget::unlimited())
            .expect("an unlimited budget cannot interrupt the SCC search")
    }

    /// [`CompiledRunGraph::sccs_masked`] under a [`QueryBudget`]: the
    /// deadline/cancellation is polled every `INTERRUPT_STRIDE` Tarjan
    /// iterations (an interrupted run leaves `scratch` in an unspecified —
    /// but reusable — state).
    ///
    /// # Errors
    ///
    /// [`EngineError::Deadline`] or [`EngineError::Cancelled`] per the
    /// budget; the state bound does not apply (the graph is already
    /// built).
    pub fn sccs_masked_budget(
        &self,
        filter: EdgeFilter,
        scratch: &mut LiveScratch,
        budget: &QueryBudget,
    ) -> Result<(), EngineError> {
        let _span = PhaseTimer::start(Phase::SccSearch).with_value(self.num_states() as u64);
        let n = self.num_states();
        scratch.index.clear();
        scratch.index.resize(n, UNVISITED);
        scratch.low.clear();
        scratch.low.resize(n, 0);
        scratch.on_stack.clear();
        scratch.on_stack.resize(n, false);
        scratch.stack.clear();
        scratch.work.clear();
        scratch.component.clear();
        scratch.component.resize(n, UNVISITED);
        scratch.count = 0;

        let mut next_index = 0u32;
        let mut ticks = 0usize;
        for root in 0..n as u32 {
            if scratch.index[root as usize] != UNVISITED {
                continue;
            }
            scratch.work.push((root, self.row_start[root as usize]));
            while let Some(&mut (v, ref mut cursor)) = scratch.work.last_mut() {
                ticks += 1;
                if ticks.is_multiple_of(INTERRUPT_STRIDE) {
                    budget.check_interrupt()?;
                }
                let vi = v as usize;
                if scratch.index[vi] == UNVISITED {
                    scratch.index[vi] = next_index;
                    scratch.low[vi] = next_index;
                    next_index += 1;
                    scratch.stack.push(v);
                    scratch.on_stack[vi] = true;
                }
                // Advance the cursor to the next kept edge of v.
                let row_end = self.row_start[vi + 1];
                let mut next_edge = None;
                while *cursor < row_end {
                    let e = *cursor as usize;
                    *cursor += 1;
                    if filter.keeps(self.edge_mask[e]) {
                        next_edge = Some(e);
                        break;
                    }
                }
                match next_edge {
                    Some(e) => {
                        let w = self.edge_target[e] as usize;
                        if scratch.index[w] == UNVISITED {
                            scratch.work.push((w as u32, self.row_start[w]));
                        } else if scratch.on_stack[w] {
                            scratch.low[vi] = scratch.low[vi].min(scratch.index[w]);
                        }
                    }
                    None => {
                        // All children done: close v.
                        if scratch.low[vi] == scratch.index[vi] {
                            loop {
                                let w = scratch.stack.pop().expect("tarjan stack underflow");
                                scratch.on_stack[w as usize] = false;
                                scratch.component[w as usize] = scratch.count;
                                if w == v {
                                    break;
                                }
                            }
                            scratch.count += 1;
                        }
                        let (v, _) = scratch.work.pop().expect("frame exists");
                        if let Some(&mut (u, _)) = scratch.work.last_mut() {
                            let (ui, vi) = (u as usize, v as usize);
                            scratch.low[ui] = scratch.low[ui].min(scratch.low[vi]);
                        }
                    }
                }
            }
        }
        Ok(())
    }
}

impl<L: Clone> CompiledRunGraph<L> {
    /// Answers one [`LoopQuery`]: SCC-decomposes the filtered subgraph,
    /// finds a loop witnessing every required mask, and extracts its
    /// lasso (shortest prefix through the **full** graph, closed walk
    /// through the filtered SCC). Returns `None` if no such loop exists.
    pub fn find_loop(&self, query: &LoopQuery, scratch: &mut LiveScratch) -> Option<CompiledLasso<L>> {
        self.find_loop_budget(query, scratch, &QueryBudget::unlimited())
            .expect("an unlimited budget cannot interrupt the loop search")
    }

    /// [`CompiledRunGraph::find_loop`] under a [`QueryBudget`] (polled
    /// during the SCC decomposition, the dominant phase).
    ///
    /// # Errors
    ///
    /// [`EngineError::Deadline`] or [`EngineError::Cancelled`] per the
    /// budget.
    pub fn find_loop_budget(
        &self,
        query: &LoopQuery,
        scratch: &mut LiveScratch,
        budget: &QueryBudget,
    ) -> Result<Option<CompiledLasso<L>>, EngineError> {
        self.sccs_masked_budget(query.filter, scratch, budget)?;
        Ok(match query.selection {
            LoopSelection::FirstEdge => {
                let found = query.required.first().and_then(|&req| {
                    (0..self.num_edges()).find(|&e| {
                        let mask = self.edge_mask[e];
                        query.filter.keeps(mask)
                            && mask & req == req
                            && scratch.component[self.edge_from[e] as usize]
                                == scratch.component[self.edge_target[e] as usize]
                    })
                });
                found.and_then(|e| self.build_lasso(query.filter, scratch, &[e as u32]))
            }
            LoopSelection::FirstComponent => {
                let r = query.required.len();
                if r == 0 {
                    return Ok(None);
                }
                let count = scratch.count as usize;
                let mut first_match = std::mem::take(&mut scratch.first_match);
                first_match.clear();
                first_match.resize(count * r, UNVISITED);
                for e in 0..self.num_edges() {
                    let mask = self.edge_mask[e];
                    if !query.filter.keeps(mask) {
                        continue;
                    }
                    let comp = scratch.component[self.edge_from[e] as usize];
                    if comp != scratch.component[self.edge_target[e] as usize] {
                        continue;
                    }
                    for (j, &req) in query.required.iter().enumerate() {
                        let slot = &mut first_match[comp as usize * r + j];
                        if *slot == UNVISITED && mask & req == req {
                            *slot = e as u32;
                        }
                    }
                }
                let mut result = None;
                for comp in 0..count {
                    let slots = &first_match[comp * r..(comp + 1) * r];
                    if slots.contains(&UNVISITED) {
                        continue;
                    }
                    let required: Vec<u32> = slots.to_vec();
                    if let Some(lasso) = self.build_lasso(query.filter, scratch, &required) {
                        result = Some(lasso);
                        break;
                    }
                }
                scratch.first_match = first_match;
                result
            }
        })
    }

    /// Runs independent queries and returns the violation of the smallest
    /// query index, with its index. `threads > 1` fans the queries out
    /// over freshly spawned scoped threads (each with its own
    /// [`LiveScratch`]); because each query is deterministic and the
    /// minimal index wins, the result is identical at every thread count.
    ///
    /// Session users pass their persistent pool through
    /// [`CompiledRunGraph::find_first_loop_exec`] instead of spawning
    /// here.
    pub fn find_first_loop(
        &self,
        queries: &[LoopQuery],
        threads: usize,
    ) -> Option<(usize, CompiledLasso<L>)>
    where
        L: Send + Sync,
    {
        self.find_first_loop_exec(queries, &Executor::for_threads(threads))
    }

    /// [`CompiledRunGraph::find_first_loop`] on an explicit [`Executor`]:
    /// the liveness fan-out of the `tm_checker::Verifier` session, whose
    /// persistent worker pool replaces the per-property scoped-thread
    /// spawns. Results are identical under every executor and width.
    ///
    /// # Panics
    ///
    /// Panics if a fan-out task panics or an armed fault plan fires;
    /// budget-aware callers use
    /// [`CompiledRunGraph::find_first_loop_budget`], which reports those
    /// as structured errors instead.
    pub fn find_first_loop_exec(
        &self,
        queries: &[LoopQuery],
        executor: &Executor<'_>,
    ) -> Option<(usize, CompiledLasso<L>)>
    where
        L: Send + Sync,
    {
        self.find_first_loop_budget(queries, executor, &QueryBudget::unlimited())
            .unwrap_or_else(|error| panic!("liveness fan-out failed: {error}"))
    }

    /// [`CompiledRunGraph::find_first_loop_exec`] under a full
    /// [`QueryBudget`]: each worker polls the budget inside its SCC
    /// searches, and fan-out failures come back as structured errors.
    ///
    /// # Errors
    ///
    /// * [`EngineError::Deadline`] / [`EngineError::Cancelled`] — the
    ///   budget interrupted a loop search;
    /// * [`EngineError::TaskPanicked`] — a fan-out task panicked;
    /// * [`EngineError::FaultInjected`] — an armed [`crate::fault`] plan
    ///   fired at dispatch.
    pub fn find_first_loop_budget(
        &self,
        queries: &[LoopQuery],
        executor: &Executor<'_>,
        budget: &QueryBudget,
    ) -> Result<Option<(usize, CompiledLasso<L>)>, EngineError>
    where
        L: Send + Sync,
    {
        let width = executor.threads().max(1).min(queries.len().max(1));
        if width <= 1 {
            let mut scratch = LiveScratch::default();
            for (i, q) in queries.iter().enumerate() {
                if let Some(lasso) = self.find_loop_budget(q, &mut scratch, budget)? {
                    return Ok(Some((i, lasso)));
                }
            }
            return Ok(None);
        }
        // Strided assignment: worker w owns queries w, w + width, …, in
        // increasing order, and stops once a smaller-index violation is
        // known — its own later indices can no longer win.
        let min_index = AtomicUsize::new(usize::MAX);
        type SubsetOutcome<L> = Result<(usize, CompiledLasso<L>), EngineError>;
        let mut found: Vec<Option<SubsetOutcome<L>>> = (0..width).map(|_| None).collect();
        executor.try_scope(|scope| {
            for (w, slot) in found.iter_mut().enumerate() {
                let min_index = &min_index;
                scope.spawn(move || {
                    let mut scratch = LiveScratch::default();
                    let mut i = w;
                    while i < queries.len() {
                        if min_index.load(Ordering::Relaxed) < i {
                            return;
                        }
                        match self.find_loop_budget(&queries[i], &mut scratch, budget) {
                            Ok(Some(lasso)) => {
                                min_index.fetch_min(i, Ordering::Relaxed);
                                *slot = Some(Ok((i, lasso)));
                                return;
                            }
                            Ok(None) => {}
                            Err(error) => {
                                *slot = Some(Err(error));
                                return;
                            }
                        }
                        i += width;
                    }
                });
            }
        })?;
        // A budget abort anywhere aborts the whole fan-out: the global
        // condition (deadline, cancellation) holds for every worker.
        let mut best: Option<(usize, CompiledLasso<L>)> = None;
        for entry in found.into_iter().flatten() {
            let (i, lasso) = entry?;
            if best.as_ref().is_none_or(|(bi, _)| i < *bi) {
                best = Some((i, lasso));
            }
        }
        Ok(best)
    }

    /// Wraps the `required` edges (indices into the edge arrays, all
    /// within one SCC of the filtered subgraph) into a lasso: a closed
    /// walk starting and ending at the source of the first required edge,
    /// visiting every required edge, prefixed by a shortest path from
    /// state 0 through the full (unfiltered) graph.
    fn build_lasso(
        &self,
        filter: EdgeFilter,
        scratch: &mut LiveScratch,
        required: &[u32],
    ) -> Option<CompiledLasso<L>> {
        let _span = PhaseTimer::start(Phase::LassoExtract);
        let (&first, rest) = required.split_first()?;
        let comp = scratch.component[self.edge_from[first as usize] as usize];
        // All endpoints must share the SCC (guaranteed by the callers;
        // kept as the same guard the reference walk has).
        for &e in required {
            if scratch.component[self.edge_from[e as usize] as usize] != comp
                || scratch.component[self.edge_target[e as usize] as usize] != comp
            {
                return None;
            }
        }
        let mut walk: Vec<u32> = vec![first];
        let mut at = self.edge_target[first as usize];
        for &e in rest {
            let entry = self.edge_from[e as usize];
            self.bfs_path(at, entry, Some((filter, comp)), scratch, &mut walk)?;
            walk.push(e);
            at = self.edge_target[e as usize];
        }
        let home = self.edge_from[first as usize];
        self.bfs_path(at, home, Some((filter, comp)), scratch, &mut walk)?;

        let mut prefix: Vec<u32> = Vec::new();
        self.bfs_path(0, home, None, scratch, &mut prefix)?;
        Some(CompiledLasso {
            prefix: prefix
                .into_iter()
                .map(|e| self.labels[self.edge_label[e as usize] as usize].clone())
                .collect(),
            cycle: walk
                .into_iter()
                .map(|e| self.labels[self.edge_label[e as usize] as usize].clone())
                .collect(),
        })
    }

    /// Appends a shortest path (edge indices) from `from` to `target` to
    /// `out`. With `restrict = Some((filter, comp))` the path uses only
    /// kept edges whose endpoints lie in SCC `comp` of the current
    /// `scratch` decomposition; with `None` the full graph. BFS visits
    /// edges in enumeration order, so ties break exactly as in the
    /// reference [`crate::LabeledGraph::shortest_path_to`].
    fn bfs_path(
        &self,
        from: u32,
        target: u32,
        restrict: Option<(EdgeFilter, u32)>,
        scratch: &mut LiveScratch,
        out: &mut Vec<u32>,
    ) -> Option<()> {
        if from == target {
            return Some(());
        }
        let n = self.num_states();
        scratch.bfs_seen.resize(n, 0);
        scratch.bfs_pred.resize(n, (0, 0));
        scratch.bfs_generation += 1;
        let generation = scratch.bfs_generation;
        scratch.bfs_queue.clear();
        scratch.bfs_queue.push(from);
        scratch.bfs_seen[from as usize] = generation;
        let mut head = 0usize;
        while head < scratch.bfs_queue.len() {
            let q = scratch.bfs_queue[head];
            head += 1;
            let qi = q as usize;
            for e in self.row_start[qi]..self.row_start[qi + 1] {
                let ei = e as usize;
                if let Some((filter, comp)) = restrict {
                    if !filter.keeps(self.edge_mask[ei])
                        || scratch.component[self.edge_target[ei] as usize] != comp
                    {
                        continue;
                    }
                }
                let to = self.edge_target[ei];
                if scratch.bfs_seen[to as usize] == generation {
                    continue;
                }
                scratch.bfs_seen[to as usize] = generation;
                scratch.bfs_pred[to as usize] = (q, e);
                if to == target {
                    let start = out.len();
                    let mut at = to;
                    while at != from {
                        let (p, edge) = scratch.bfs_pred[at as usize];
                        out.push(edge);
                        at = p;
                    }
                    out[start..].reverse();
                    return Some(());
                }
                scratch.bfs_queue.push(to);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{strongly_connected_components, LabeledGraph};

    /// A label carrying its own class, for hand-built test graphs.
    #[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
    struct TestLabel {
        id: u8,
        thread: u8,
        commit: bool,
        abort: bool,
    }

    /// Explicit adjacency as a [`RunGraphSource`]: states `0..n`, edges in
    /// list order per state.
    struct VecSource {
        succ: Vec<Vec<(TestLabel, u32)>>,
    }

    impl RunGraphSource for VecSource {
        type State = u32;
        type Label = TestLabel;

        fn initial_state(&self) -> u32 {
            0
        }

        fn successors(&self, state: &u32, out: &mut Vec<(TestLabel, u32)>) {
            out.extend(self.succ[*state as usize].iter().copied());
        }

        fn classify(&self, label: &TestLabel) -> LabelClass {
            LabelClass {
                thread: label.thread as usize,
                is_commit: label.commit,
                is_abort: label.abort,
                emits_statement: label.commit || label.abort,
            }
        }
    }

    fn lbl(id: u8, thread: u8) -> TestLabel {
        TestLabel {
            id,
            thread,
            commit: false,
            abort: false,
        }
    }

    fn abort(id: u8, thread: u8) -> TestLabel {
        TestLabel {
            id,
            thread,
            commit: false,
            abort: true,
        }
    }

    fn commit(id: u8, thread: u8) -> TestLabel {
        TestLabel {
            id,
            thread,
            commit: true,
            abort: false,
        }
    }

    const KEEP_ALL: EdgeFilter = EdgeFilter {
        keep_any: MASK_ALL_THREADS,
        forbid_all: 0,
    };

    #[test]
    fn build_compiles_reachable_subgraph_in_bfs_order() {
        // 0 -> 1 -> 2 -> 0 ring plus an unreachable state 3 in the
        // adjacency (never discovered).
        let source = VecSource {
            succ: vec![
                vec![(lbl(0, 0), 1)],
                vec![(lbl(1, 1), 2)],
                vec![(lbl(2, 0), 0)],
                vec![(lbl(3, 0), 0)],
            ],
        };
        let (graph, states) = CompiledRunGraph::build(&source, 100).unwrap();
        assert_eq!(graph.num_states(), 3);
        assert_eq!(states, vec![0, 1, 2]);
        assert_eq!(graph.num_edges(), 3);
        assert_eq!(graph.num_labels(), 3);
        let edges: Vec<(usize, u8, usize)> =
            graph.edges().map(|(f, l, t)| (f, l.id, t)).collect();
        assert_eq!(edges, vec![(0, 0, 1), (1, 1, 2), (2, 2, 0)]);
    }

    #[test]
    fn build_enforces_state_bound_structurally() {
        let source = VecSource {
            succ: vec![
                vec![(lbl(0, 0), 1)],
                vec![(lbl(1, 0), 2)],
                vec![(lbl(2, 0), 0)],
            ],
        };
        assert_eq!(
            CompiledRunGraph::build(&source, 2).err(),
            Some(EngineError::StateLimit(2))
        );
        // An expired deadline is the same structured abort, not a panic.
        let expired = QueryBudget::unlimited().with_timeout(std::time::Duration::ZERO);
        assert_eq!(
            CompiledRunGraph::build_budget(&source, &expired).err(),
            Some(EngineError::Deadline)
        );
    }

    #[test]
    fn masked_sccs_match_cloned_subgraph_reference() {
        // Two 2-cycles (threads 0 and 1) joined by a thread-0 bridge.
        let source = VecSource {
            succ: vec![
                vec![(lbl(0, 0), 1)],
                vec![(lbl(1, 0), 0), (lbl(2, 0), 2)],
                vec![(lbl(3, 1), 3)],
                vec![(lbl(4, 1), 2)],
            ],
        };
        let (graph, _) = CompiledRunGraph::build(&source, 100).unwrap();
        let mut scratch = LiveScratch::default();
        for filter in [
            KEEP_ALL,
            EdgeFilter { keep_any: 1 << 0, forbid_all: 0 },
            EdgeFilter { keep_any: 1 << 1, forbid_all: 0 },
        ] {
            graph.sccs_masked(filter, &mut scratch);
            // Reference: materialize, filter, Tarjan.
            let mut labeled = LabeledGraph::new(graph.num_states());
            for (from, l, to) in graph.edges() {
                labeled.add_edge(from, *l, to);
            }
            let source_ref = &source;
            let filtered = labeled.filtered(|_, l, _| {
                filter.keeps(source_ref.classify(l).mask())
            });
            let reference = strongly_connected_components(&filtered);
            assert_eq!(scratch.num_components(), reference.count(), "{filter:?}");
            for v in 0..graph.num_states() {
                assert_eq!(
                    scratch.component_of(v),
                    reference.component_of(v),
                    "state {v} under {filter:?}"
                );
            }
        }
    }

    #[test]
    fn find_loop_first_edge_reports_lasso_with_prefix() {
        // 0 --t0--> 1, loop 1 <-> 2 with an abort of thread 0 inside.
        let source = VecSource {
            succ: vec![
                vec![(lbl(0, 0), 1)],
                vec![(abort(1, 0), 2)],
                vec![(lbl(2, 0), 1)],
            ],
        };
        let (graph, _) = CompiledRunGraph::build(&source, 100).unwrap();
        let query = LoopQuery {
            filter: EdgeFilter {
                keep_any: 1 << 0,
                forbid_all: MASK_COMMIT,
            },
            required: vec![MASK_ABORT],
            selection: LoopSelection::FirstEdge,
        };
        let mut scratch = LiveScratch::default();
        let lasso = graph.find_loop(&query, &mut scratch).expect("loop exists");
        assert_eq!(
            lasso.prefix.iter().map(|l| l.id).collect::<Vec<_>>(),
            vec![0]
        );
        assert_eq!(
            lasso.cycle.iter().map(|l| l.id).collect::<Vec<_>>(),
            vec![1, 2]
        );
    }

    #[test]
    fn commit_filter_suppresses_loop() {
        // The only loop contains a commit: filtered out, no violation.
        let source = VecSource {
            succ: vec![
                vec![(lbl(0, 0), 1)],
                vec![(commit(1, 0), 0), (abort(2, 0), 0)],
            ],
        };
        let (graph, _) = CompiledRunGraph::build(&source, 100).unwrap();
        let mut scratch = LiveScratch::default();
        // With commits forbidden the abort loop remains.
        let with_aborts = LoopQuery {
            filter: EdgeFilter {
                keep_any: MASK_ALL_THREADS,
                forbid_all: MASK_COMMIT,
            },
            required: vec![MASK_ABORT],
            selection: LoopSelection::FirstEdge,
        };
        assert!(graph.find_loop(&with_aborts, &mut scratch).is_some());
        // Forbidding aborts too leaves no qualifying loop.
        let nothing = LoopQuery {
            filter: EdgeFilter {
                keep_any: MASK_ALL_THREADS,
                forbid_all: MASK_COMMIT,
            },
            required: vec![MASK_ABORT | MASK_COMMIT],
            selection: LoopSelection::FirstEdge,
        };
        assert!(graph.find_loop(&nothing, &mut scratch).is_none());
    }

    #[test]
    fn first_component_requires_all_masks_in_one_scc() {
        // Two disjoint loops: thread 0 aborts in one, thread 1 in the
        // other. Together they can never witness a livelock of {0, 1}.
        let source = VecSource {
            succ: vec![
                vec![(abort(0, 0), 0), (lbl(1, 0), 1)],
                vec![(abort(2, 1), 1)],
            ],
        };
        let (graph, _) = CompiledRunGraph::build(&source, 100).unwrap();
        let mut scratch = LiveScratch::default();
        let both = LoopQuery {
            filter: EdgeFilter {
                keep_any: 0b11,
                forbid_all: MASK_COMMIT,
            },
            required: vec![MASK_ABORT | 1 << 0, MASK_ABORT | 1 << 1],
            selection: LoopSelection::FirstComponent,
        };
        assert!(graph.find_loop(&both, &mut scratch).is_none());
        // Each singleton requirement is satisfiable on its own.
        for t in 0..2u16 {
            let single = LoopQuery {
                filter: EdgeFilter {
                    keep_any: 1 << t,
                    forbid_all: MASK_COMMIT,
                },
                required: vec![MASK_ABORT | 1 << t],
                selection: LoopSelection::FirstComponent,
            };
            assert!(
                graph.find_loop(&single, &mut scratch).is_some(),
                "thread {t}"
            );
        }
    }

    #[test]
    fn find_first_loop_is_thread_count_independent() {
        // Loops for threads 1 and 2 exist; queries ordered so index 1 is
        // the first violation whatever the pool size.
        let source = VecSource {
            succ: vec![
                vec![(lbl(0, 0), 1)],
                vec![(abort(1, 1), 2)],
                vec![(lbl(2, 1), 1), (abort(3, 2), 1)],
            ],
        };
        let (graph, _) = CompiledRunGraph::build(&source, 100).unwrap();
        let query_for = |t: u16| LoopQuery {
            filter: EdgeFilter {
                keep_any: 1 << t,
                forbid_all: MASK_COMMIT,
            },
            required: vec![MASK_ABORT],
            selection: LoopSelection::FirstEdge,
        };
        let queries: Vec<LoopQuery> = (0..4).map(query_for).collect();
        let expected = graph.find_first_loop(&queries, 1).expect("violation");
        assert_eq!(expected.0, 1);
        for threads in [2, 3, 8] {
            let got = graph.find_first_loop(&queries, threads).expect("violation");
            assert_eq!(got.0, expected.0, "threads={threads}");
            assert_eq!(got.1, expected.1, "threads={threads}");
        }
        // The persistent pool picks the same violation as the scoped and
        // sequential paths, at every pool size.
        for size in [1usize, 2, 5] {
            let pool = crate::WorkerPool::new(size);
            let got = graph
                .find_first_loop_exec(&queries, &Executor::Pool(&pool))
                .expect("violation");
            assert_eq!(got, expected, "pool size {size}");
        }
    }

    #[test]
    fn label_class_mask_bits() {
        let class = LabelClass {
            thread: 3,
            is_commit: true,
            is_abort: false,
            emits_statement: true,
        };
        let mask = class.mask();
        assert_eq!(mask, (1 << 3) | MASK_COMMIT | MASK_EMITS);
        assert!(EdgeFilter { keep_any: 1 << 3, forbid_all: 0 }.keeps(mask));
        assert!(!EdgeFilter {
            keep_any: 1 << 3,
            forbid_all: MASK_COMMIT
        }
        .keeps(mask));
        // A forbid mask pairing a *different* thread with commit keeps it.
        assert!(EdgeFilter {
            keep_any: MASK_ALL_THREADS,
            forbid_all: (1 << 2) | MASK_COMMIT
        }
        .keeps(mask));
    }

    #[test]
    fn heap_bytes_tracks_the_csr_arrays() {
        // Lower bound from the graph's own counts: `row_start` has
        // `states + 1` entries, every edge appears in three u32 arrays
        // plus the mask array, every label is stored once.
        fn floor(g: &CompiledRunGraph<TestLabel>) -> usize {
            (g.num_states() + 1 + 3 * g.num_edges()) * std::mem::size_of::<u32>()
                + g.num_edges() * std::mem::size_of::<EdgeMask>()
                + g.num_labels() * std::mem::size_of::<TestLabel>()
        }
        let small = VecSource {
            succ: vec![vec![(lbl(0, 0), 1)], vec![(lbl(1, 1), 0)]],
        };
        let (small_graph, _) = CompiledRunGraph::build(&small, 100).unwrap();
        assert!(small_graph.heap_bytes() >= floor(&small_graph));
        let big = VecSource {
            succ: (0..64u32)
                .map(|i| vec![(lbl((i % 8) as u8, 0), (i + 1) % 64)])
                .collect(),
        };
        let (big_graph, _) = CompiledRunGraph::build(&big, 100).unwrap();
        assert!(big_graph.heap_bytes() >= floor(&big_graph));
        // A strictly larger graph is charged strictly more.
        assert!(big_graph.heap_bytes() > small_graph.heap_bytes());
    }

    #[test]
    #[should_panic(expected = "mask capacity")]
    fn oversized_thread_id_rejected() {
        let _ = LabelClass {
            thread: MAX_MASK_THREADS,
            is_commit: false,
            is_abort: false,
            emits_statement: false,
        }
        .mask();
    }
}
