//! Deterministic fault injection:
//! `TM_FAULT=<site>:<nth>[:delay_ms][:panic]`.
//!
//! A *fault point* is a named call site (`fault::fault_point("dispatch")`)
//! that normally does nothing. When a fault plan is installed — from the
//! `TM_FAULT` environment variable at process start, or programmatically
//! in tests — the plan's site counts its hits, and exactly the `nth` hit
//! (1-based) first sleeps `delay_ms` milliseconds (default 0), then fails
//! with [`EngineError::FaultInjected`] — or, with the `panic` flavor,
//! panics instead of returning, modeling a crashed worker rather than a
//! clean failure (RAII cleanup is all that runs; the robustness suites
//! use this to prove guards don't leak). Every other hit, every other
//! site, and every hit after the `nth` passes untouched.
//!
//! Firing exactly once makes chaos testing deterministic: a retried
//! operation succeeds on its second attempt, and the conformance suites
//! assert the retried run is bit-identical to a fault-free one.
//!
//! Registered sites across the workspace:
//!
//! | site       | where it fires                                      |
//! |------------|-----------------------------------------------------|
//! | `dispatch` | worker-pool / executor parallel-region dispatch     |
//! | `build`    | tm-service artifact build (spec or run graph)       |
//! | `evict`    | tm-service budget-ledger charge settle / eviction   |
//! | `encode`   | tm-service wire encoding of a batch response        |
//! | `store`    | tm-store artifact save (before the atomic rename —  |
//! |            | a mid-write crash) and artifact load (a poisoned    |
//! |            | read; the service falls back to rebuild)            |

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use crate::budget::EngineError;

/// One installed fault: fail the `nth` hit of `site`, after `delay_ms` —
/// by error return, or by panic when `panic` is set.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct FaultPlan {
    /// The fault-point name this plan arms.
    pub site: String,
    /// Which hit fires, 1-based.
    pub nth: u64,
    /// Milliseconds to sleep before failing (models a slow failure).
    pub delay_ms: u64,
    /// Fire by panicking instead of returning an error (models a
    /// crashed thread; only RAII cleanup runs).
    pub panic: bool,
}

impl FaultPlan {
    /// Parses `<site>:<nth>[:delay_ms][:panic]` (the `TM_FAULT`
    /// format). The `delay_ms` field may be omitted when `panic` is
    /// given: `build:1:panic` ≡ `build:1:0:panic`.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut parts = spec.split(':');
        let site = parts.next().unwrap_or("").trim();
        if site.is_empty() {
            return Err(format!("TM_FAULT {spec:?}: empty site"));
        }
        let nth = parts
            .next()
            .ok_or_else(|| format!("TM_FAULT {spec:?}: missing <nth>"))?
            .trim()
            .parse::<u64>()
            .map_err(|e| format!("TM_FAULT {spec:?}: bad <nth>: {e}"))?;
        if nth == 0 {
            return Err(format!("TM_FAULT {spec:?}: <nth> is 1-based"));
        }
        let mut delay_ms = 0;
        let mut panic = false;
        match parts.next().map(str::trim) {
            None => {}
            Some("panic") => panic = true,
            Some(ms) => {
                delay_ms = ms
                    .parse::<u64>()
                    .map_err(|e| format!("TM_FAULT {spec:?}: bad delay_ms: {e}"))?;
                match parts.next().map(str::trim) {
                    None => {}
                    Some("panic") => panic = true,
                    Some(other) => {
                        return Err(format!("TM_FAULT {spec:?}: unexpected field {other:?}"));
                    }
                }
            }
        }
        if parts.next().is_some() {
            return Err(format!("TM_FAULT {spec:?}: too many fields"));
        }
        Ok(FaultPlan {
            site: site.to_owned(),
            nth,
            delay_ms,
            panic,
        })
    }
}

struct FaultState {
    plan: Option<FaultPlan>,
    /// Hits of the armed site so far.
    hits: u64,
    /// Whether `TM_FAULT` has been consulted.
    env_loaded: bool,
}

/// Fast path: `false` means no plan is armed and [`fault_point`] is a
/// single atomic load — but only once [`ENV_LOADED`] says `TM_FAULT` has
/// been consulted, otherwise the first hit must take the slow path to
/// arm an environment-provided plan.
static ARMED: AtomicBool = AtomicBool::new(false);

/// Mirrors `FaultState::env_loaded` for the lock-free fast path.
static ENV_LOADED: AtomicBool = AtomicBool::new(false);

static STATE: Mutex<FaultState> = Mutex::new(FaultState {
    plan: None,
    hits: 0,
    env_loaded: false,
});

fn lock_state() -> std::sync::MutexGuard<'static, FaultState> {
    let mut state = STATE.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
    if !state.env_loaded {
        state.env_loaded = true;
        if let Ok(spec) = std::env::var("TM_FAULT") {
            if !spec.trim().is_empty() {
                match FaultPlan::parse(&spec) {
                    Ok(plan) => {
                        state.plan = Some(plan);
                        ARMED.store(true, Ordering::Release);
                    }
                    Err(message) => eprintln!("ignoring {message}"),
                }
            }
        }
        ENV_LOADED.store(true, Ordering::Release);
    }
    state
}

/// Installs `plan`, replacing any armed plan and resetting the hit
/// counter. Tests drive chaos scenarios through this; production arms
/// plans via `TM_FAULT` instead.
pub fn install_fault(plan: FaultPlan) {
    let mut state = lock_state();
    state.plan = Some(plan);
    state.hits = 0;
    ARMED.store(true, Ordering::Release);
}

/// Disarms fault injection and resets the hit counter. `TM_FAULT` is not
/// re-read.
pub fn clear_fault() {
    let mut state = lock_state();
    state.plan = None;
    state.hits = 0;
    ARMED.store(false, Ordering::Release);
}

/// A named fault point. Returns `Err(EngineError::FaultInjected)` on
/// exactly the armed plan's `nth` hit of its site (after sleeping the
/// plan's delay) — or panics there instead if the plan has the `panic`
/// flavor — and `Ok(())` otherwise.
pub fn fault_point(site: &str) -> Result<(), EngineError> {
    if ENV_LOADED.load(Ordering::Acquire) && !ARMED.load(Ordering::Acquire) {
        return Ok(());
    }
    let (delay_ms, panic) = {
        let mut state = lock_state();
        let Some(plan) = &state.plan else {
            return Ok(());
        };
        if plan.site != site {
            return Ok(());
        }
        state.hits += 1;
        let plan = state.plan.as_ref().expect("checked above");
        if state.hits != plan.nth {
            return Ok(());
        }
        (plan.delay_ms, plan.panic)
    };
    if delay_ms > 0 {
        std::thread::sleep(Duration::from_millis(delay_ms));
    }
    if panic {
        panic!("injected panic fault at site {site:?}");
    }
    Err(EngineError::FaultInjected)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_the_documented_format() {
        assert_eq!(
            FaultPlan::parse("build:2"),
            Ok(FaultPlan {
                site: "build".into(),
                nth: 2,
                delay_ms: 0,
                panic: false
            })
        );
        assert_eq!(
            FaultPlan::parse("dispatch:1:250"),
            Ok(FaultPlan {
                site: "dispatch".into(),
                nth: 1,
                delay_ms: 250,
                panic: false
            })
        );
        assert_eq!(
            FaultPlan::parse("encode:1:panic"),
            Ok(FaultPlan {
                site: "encode".into(),
                nth: 1,
                delay_ms: 0,
                panic: true
            })
        );
        assert_eq!(
            FaultPlan::parse("build:3:40:panic"),
            Ok(FaultPlan {
                site: "build".into(),
                nth: 3,
                delay_ms: 40,
                panic: true
            })
        );
        for bad in [
            "",
            ":1",
            "build",
            "build:0",
            "build:x",
            "build:1:y",
            "a:1:2:3",
            "a:1:panic:2",
            "a:1:2:panic:x",
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "{bad:?}");
        }
    }

    // The firing behavior of the global plan is exercised by the chaos
    // conformance suite in tm-service, which serializes installs; firing
    // tests here would race other tm-automata tests sharing the process.
}
