//! Persistent worker pool and the executor abstraction behind every
//! parallel region of the engines.
//!
//! The product engine used to spawn three `thread::scope`s per BFS level
//! and the liveness engine one scope per property check; a deep product
//! pays that thread start-up cost hundreds of times, and a session
//! answering many queries pays it per query. [`WorkerPool`] keeps a fixed
//! set of workers alive instead: tasks are sent over a shared channel and
//! a per-batch countdown (mutex + condvar) blocks the submitting thread
//! until every task of the batch has finished — the same structural
//! guarantee `thread::scope` gives, which is what makes it sound to run
//! borrowing tasks on `'static` worker threads (see the safety note in
//! the module source).
//!
//! [`Executor`] is the knob the engines actually take:
//!
//! * [`Executor::Sequential`] — run tasks inline (the deterministic
//!   single-threaded engines);
//! * [`Executor::Scoped`] — one freshly spawned scoped thread per task
//!   (the pre-pool behavior, kept as the A/B baseline for the
//!   pool-vs-scoped bench group);
//! * [`Executor::Pool`] — dispatch to a [`WorkerPool`].
//!
//! All engine results are index-addressed (each task writes its own
//! slot), so verdicts, counterexamples, and lassos are identical under
//! every executor — the determinism contract is scheduling-independent.

// The one place in the workspace that needs `unsafe`: erasing a task's
// borrow lifetime so it can cross onto a persistent worker thread. The
// soundness argument is local to `run_batch` and documented there.
#![allow(unsafe_code)]

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

use tm_obs::{Phase, PhaseTimer};

use crate::budget::EngineError;
use crate::fault;

/// A type-erased task with its borrows erased to `'static`; only ever
/// constructed inside [`WorkerPool::run_batch`], which guarantees the
/// erased borrows outlive the task's execution.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// Countdown shared between a batch submitter and the workers running its
/// tasks.
struct BatchState {
    /// Tasks dispatched but not yet finished.
    remaining: Mutex<usize>,
    /// Signalled when `remaining` reaches zero.
    done: Condvar,
    /// Set if any task of the batch panicked (the panic is caught on the
    /// worker, recorded here, and re-raised on the submitting thread).
    panicked: AtomicBool,
}

impl BatchState {
    fn new() -> Arc<Self> {
        Arc::new(BatchState {
            remaining: Mutex::new(0),
            done: Condvar::new(),
            panicked: AtomicBool::new(false),
        })
    }

    /// Blocks until every dispatched task of the batch has finished.
    fn wait(&self) {
        let mut remaining = self
            .remaining
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        while *remaining > 0 {
            remaining = self
                .done
                .wait(remaining)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
        }
    }
}

/// Blocks on the batch countdown when dropped: even if the submitting
/// thread unwinds mid-dispatch, no task that borrows its stack can still
/// be running (or queued) once the stack frame dies.
struct WaitGuard<'a>(&'a BatchState);

impl Drop for WaitGuard<'_> {
    fn drop(&mut self) {
        self.0.wait();
    }
}

/// A fixed-size pool of persistent worker threads.
///
/// Created once per verification session (see `tm_checker::Verifier`) and
/// reused by every parallel region of every query, replacing the
/// per-region `thread::scope` spawns. Dropping the pool shuts the workers
/// down and joins them.
///
/// # Examples
///
/// ```
/// use tm_automata::{Executor, WorkerPool};
///
/// let pool = WorkerPool::new(4);
/// let mut squares = vec![0usize; 4];
/// Executor::Pool(&pool).scope(|scope| {
///     for (i, slot) in squares.iter_mut().enumerate() {
///         scope.spawn(move || *slot = i * i);
///     }
/// });
/// assert_eq!(squares, [0, 1, 4, 9]);
/// ```
pub struct WorkerPool {
    sender: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
    size: usize,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool").field("size", &self.size).finish()
    }
}

impl WorkerPool {
    /// Spawns a pool of `size` workers (`size` is clamped to at least 1).
    pub fn new(size: usize) -> Self {
        let size = size.max(1);
        let (sender, receiver) = channel::<Job>();
        let receiver = Arc::new(Mutex::new(receiver));
        let workers = (0..size)
            .map(|_| {
                let receiver = Arc::clone(&receiver);
                std::thread::spawn(move || {
                    // Register with the sampling profiler for the
                    // worker's lifetime (inert under `TM_OBS=off`): the
                    // sampler sees this thread as `worker-N`.
                    let _profile = tm_obs::register_thread(tm_obs::ThreadKind::Worker);
                    worker_loop(&receiver)
                })
            })
            .collect();
        WorkerPool {
            sender: Some(sender),
            workers,
            size,
        }
    }

    /// Number of worker threads.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Runs a batch of borrowing tasks on the workers and blocks until
    /// all of them have finished. Panics in tasks are caught on the
    /// workers (keeping them alive for the next batch) and propagated
    /// here as [`EngineError::TaskPanicked`] once the batch has drained.
    ///
    /// Must not be called from inside a pool task of the same pool: with
    /// every worker parked on the inner batch the pool would deadlock.
    /// The engines never nest parallel regions.
    fn run_batch<'scope>(
        &self,
        tasks: Vec<Box<dyn FnOnce() + Send + 'scope>>,
    ) -> Result<(), EngineError> {
        let state = BatchState::new();
        // Installed before the first dispatch: whatever happens below —
        // including a panic on this thread mid-loop — this frame cannot
        // be left while a dispatched task is unfinished.
        let guard = WaitGuard(&state);
        let sender = self.sender.as_ref().expect("pool is alive while borrowed");
        for task in tasks {
            *state
                .remaining
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner()) += 1;
            let batch = Arc::clone(&state);
            // Queue-wait probe: stamped at enqueue, observed by the worker
            // that dequeues the job. Workers have no per-query recorder,
            // so the span lands in the global histogram only.
            let enqueued = tm_obs::obs_enabled().then(Instant::now);
            let job: Box<dyn FnOnce() + Send + 'scope> = Box::new(move || {
                if let Some(enqueued) = enqueued {
                    tm_obs::record_phase(Phase::PoolQueueWait, enqueued.elapsed(), 0);
                }
                if catch_unwind(AssertUnwindSafe(task)).is_err() {
                    batch.panicked.store(true, Ordering::Relaxed);
                }
                let mut remaining = batch
                    .remaining
                    .lock()
                    .unwrap_or_else(|poisoned| poisoned.into_inner());
                *remaining -= 1;
                if *remaining == 0 {
                    batch.done.notify_all();
                }
            });
            // SAFETY: the job's only non-`'static` content is the borrows
            // captured by `task` (lifetime `'scope`, which outlives this
            // call). The transmute erases `'scope` so the job can live on
            // a `'static` worker thread; soundness requires that the job
            // never runs — and is dropped — after `'scope` data is gone.
            // That is guaranteed by the batch countdown: `remaining` was
            // incremented before this dispatch, the job decrements it
            // only after the task has returned (or unwound) and been
            // consumed, and `guard` blocks this function — on normal
            // return *and* on unwind — until the count is zero again.
            let job: Job = unsafe {
                std::mem::transmute::<Box<dyn FnOnce() + Send + 'scope>, Job>(job)
            };
            sender.send(job).expect("workers outlive the pool handle");
        }
        drop(guard); // blocks until the batch has drained
        if state.panicked.load(Ordering::Relaxed) {
            return Err(EngineError::TaskPanicked);
        }
        Ok(())
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Closing the channel wakes every idle worker with a recv error.
        self.sender = None;
        for worker in self.workers.drain(..) {
            // A worker can only have panicked through a bug in the pool
            // itself (task panics are caught); don't double-panic here.
            let _ = worker.join();
        }
    }
}

/// Worker main loop: pull jobs off the shared channel until it closes.
fn worker_loop(receiver: &Mutex<Receiver<Job>>) {
    loop {
        let job = {
            let receiver = receiver
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            receiver.recv()
        };
        match job {
            Ok(job) => {
                // Published for the job's duration so a profiler sample
                // counts this worker as busy (`tm_parallelism`) even
                // between finer-grained phase spans.
                let _busy = tm_obs::task_frame();
                job();
            }
            Err(_) => break, // pool dropped
        }
    }
}

/// A collector of borrowing tasks for one parallel region; handed to the
/// closure of [`Executor::scope`]. Tasks run after the closure returns.
pub struct TaskScope<'scope> {
    tasks: Vec<Box<dyn FnOnce() + Send + 'scope>>,
}

impl<'scope> TaskScope<'scope> {
    /// Registers a task. All tasks of the scope run concurrently (under
    /// parallel executors); each must write only to state it exclusively
    /// borrows.
    pub fn spawn(&mut self, task: impl FnOnce() + Send + 'scope) {
        self.tasks.push(Box::new(task));
    }

    /// Number of registered tasks.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// `true` if no task has been registered.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }
}

/// How a parallel region is executed. The engines take an `&Executor`
/// wherever they used to take a thread count; results are identical under
/// every variant (and every pool size) by the determinism contract.
#[derive(Clone, Copy, Debug)]
pub enum Executor<'p> {
    /// Run tasks inline on the calling thread, in registration order —
    /// the deterministic sequential engines.
    Sequential,
    /// Spawn one scoped thread per task, per region (the pre-pool
    /// behavior; the baseline of the pool-vs-scoped A/B bench). `threads`
    /// is the region width callers should partition work for.
    Scoped {
        /// Target number of concurrent tasks per region.
        threads: usize,
    },
    /// Dispatch tasks to a persistent [`WorkerPool`].
    Pool(&'p WorkerPool),
}

impl Executor<'_> {
    /// The executor a bare thread count selects: [`Executor::Sequential`]
    /// for `threads <= 1`, otherwise [`Executor::Scoped`] — the behavior
    /// of the pre-session entry points that take a `threads` argument.
    pub fn for_threads(threads: usize) -> Executor<'static> {
        if threads <= 1 {
            Executor::Sequential
        } else {
            Executor::Scoped { threads }
        }
    }

    /// The width callers should partition a region's work into: 1, the
    /// scoped thread count, or the pool size.
    pub fn threads(&self) -> usize {
        match self {
            Executor::Sequential => 1,
            Executor::Scoped { threads } => (*threads).max(1),
            Executor::Pool(pool) => pool.size(),
        }
    }

    /// Runs one parallel region: collects the tasks registered by `f`,
    /// executes them to completion, then returns `f`'s result. Tasks may
    /// borrow from the caller's stack; the region is fully synchronous
    /// (no task outlives the call).
    ///
    /// # Panics
    ///
    /// Re-raises a task panic (or an injected dispatch fault) on the
    /// calling thread. The engines use [`Executor::try_scope`] instead,
    /// which returns these as structured errors.
    pub fn scope<'scope, R>(&self, f: impl FnOnce(&mut TaskScope<'scope>) -> R) -> R {
        self.try_scope(f)
            .unwrap_or_else(|error| panic!("parallel region failed: {error}"))
    }

    /// [`Executor::scope`] with structured failure: a task panic — caught
    /// on the worker under [`Executor::Pool`], on the region join under
    /// the other executors — comes back as
    /// [`EngineError::TaskPanicked`], and the `dispatch` fault-injection
    /// point (see [`crate::fault`]) fires here. The region is still fully
    /// synchronous: on `Err` as on `Ok`, no task is left running.
    pub fn try_scope<'scope, R>(
        &self,
        f: impl FnOnce(&mut TaskScope<'scope>) -> R,
    ) -> Result<R, EngineError> {
        let mut scope = TaskScope { tasks: Vec::new() };
        let result = f(&mut scope);
        let tasks = scope.tasks;
        if tasks.is_empty() {
            return Ok(result);
        }
        fault::fault_point("dispatch")?;
        // Submit + drain of the whole region, as seen by the coordinating
        // thread (covers the inline run under `Sequential` too).
        let _span = PhaseTimer::start(Phase::PoolDispatch).with_value(tasks.len() as u64);
        match self {
            Executor::Sequential => {
                // Run every task (matching the parallel executors, which
                // always drain the batch) and report a panic afterwards.
                let mut panicked = false;
                for task in tasks {
                    panicked |= catch_unwind(AssertUnwindSafe(task)).is_err();
                }
                if panicked {
                    return Err(EngineError::TaskPanicked);
                }
            }
            Executor::Scoped { .. } => {
                // `thread::scope` re-raises a child panic on join; catch
                // it here so all executors report the same error.
                let join = catch_unwind(AssertUnwindSafe(|| {
                    std::thread::scope(|s| {
                        for task in tasks {
                            s.spawn(task);
                        }
                    });
                }));
                if join.is_err() {
                    return Err(EngineError::TaskPanicked);
                }
            }
            Executor::Pool(pool) => pool.run_batch(tasks)?,
        }
        Ok(result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    /// Sums 0..n by giving each task a disjoint slot, under one executor.
    fn slot_sum(executor: &Executor<'_>, n: usize) -> usize {
        let mut slots = vec![0usize; n];
        executor.scope(|scope| {
            for (i, slot) in slots.iter_mut().enumerate() {
                scope.spawn(move || *slot = i);
            }
        });
        slots.iter().sum()
    }

    #[test]
    fn executors_agree_on_slot_writes() {
        let pool = WorkerPool::new(3);
        let expected = (0..17).sum::<usize>();
        assert_eq!(slot_sum(&Executor::Sequential, 17), expected);
        assert_eq!(slot_sum(&Executor::Scoped { threads: 3 }, 17), expected);
        assert_eq!(slot_sum(&Executor::Pool(&pool), 17), expected);
    }

    #[test]
    fn pool_is_reusable_across_batches() {
        let pool = WorkerPool::new(2);
        let counter = AtomicUsize::new(0);
        for _ in 0..50 {
            Executor::Pool(&pool).scope(|scope| {
                for _ in 0..4 {
                    scope.spawn(|| {
                        counter.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
        }
        // Every batch fully drained before the next: no task can be
        // outstanding once `scope` returns.
        assert_eq!(counter.load(Ordering::Relaxed), 200);
    }

    #[test]
    fn batches_larger_than_the_pool_complete() {
        let pool = WorkerPool::new(2);
        assert_eq!(slot_sum(&Executor::Pool(&pool), 64), (0..64).sum());
    }

    #[test]
    fn scope_result_is_returned_and_empty_scopes_are_free() {
        let pool = WorkerPool::new(1);
        for executor in [
            Executor::Sequential,
            Executor::Scoped { threads: 4 },
            Executor::Pool(&pool),
        ] {
            let r = executor.scope(|_| 42);
            assert_eq!(r, 42);
        }
    }

    #[test]
    fn pool_size_is_clamped_and_reported() {
        assert_eq!(WorkerPool::new(0).size(), 1);
        assert_eq!(WorkerPool::new(5).size(), 5);
        assert_eq!(Executor::Pool(&WorkerPool::new(3)).threads(), 3);
        assert_eq!(Executor::Sequential.threads(), 1);
        assert_eq!(Executor::Scoped { threads: 0 }.threads(), 1);
        assert_eq!(Executor::for_threads(1).threads(), 1);
        assert!(matches!(Executor::for_threads(4), Executor::Scoped { threads: 4 }));
    }

    #[test]
    fn task_panic_is_contained_and_reraised() {
        let pool = WorkerPool::new(2);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            Executor::Pool(&pool).scope(|scope| {
                scope.spawn(|| panic!("boom"));
                scope.spawn(|| {});
            });
        }));
        assert!(result.is_err(), "task panic must propagate to the caller");
        // The workers survived the panic and the pool still runs batches.
        assert_eq!(slot_sum(&Executor::Pool(&pool), 8), (0..8).sum());
    }

    #[test]
    fn try_scope_reports_task_panics_as_errors_on_every_executor() {
        let pool = WorkerPool::new(2);
        for executor in [
            Executor::Sequential,
            Executor::Scoped { threads: 2 },
            Executor::Pool(&pool),
        ] {
            let mut ran = false;
            let result = executor.try_scope(|scope| {
                scope.spawn(|| panic!("boom"));
                scope.spawn(|| ran = true);
            });
            assert_eq!(result, Err(crate::EngineError::TaskPanicked));
            // The batch drained: the sibling task still ran, and the
            // executor is reusable afterwards.
            assert!(ran);
            assert_eq!(executor.try_scope(|_| 7), Ok(7));
        }
        assert_eq!(slot_sum(&Executor::Pool(&pool), 8), (0..8).sum());
    }
}
