//! Cooperative query budgets and structured engine errors.
//!
//! Wehrheim (arXiv 2107.00271) shows no small-model theorem rescues STM
//! model checking in general: large instances must actually be explored,
//! so a state-space blowup or a long-running query is a *legitimate*
//! outcome a serving system has to survive — not a bug to `assert!` on.
//! Every engine of this crate therefore takes a [`QueryBudget`]:
//!
//! * `max_states` bounds every interning table (implementation states,
//!   product specification rows, run-graph states) and turns a blowup
//!   into [`EngineError::StateLimit`];
//! * an optional deadline is checked at BFS level boundaries and Tarjan
//!   iteration chunks and turns a timeout into [`EngineError::Deadline`];
//! * an optional [`CancelToken`] lets another thread retire a query
//!   cooperatively ([`EngineError::Cancelled`]).
//!
//! The checks are cheap (a load and a clock read per level/chunk, a
//! comparison per interned state) and sit on the same code paths for
//! every executor, so an aborted query is aborted identically at every
//! pool size.

use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Why an engine stopped without an answer.
///
/// Engines return this instead of panicking on any resource-limit path;
/// sessions surface it as an aborted verdict, services as an HTTP error
/// code. [`EngineError::is_retryable`] is the contract clients key
/// retries on.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum EngineError {
    /// An interning table hit the budget's `max_states` bound (the bound
    /// is carried along). Retrying cannot help at the same bound.
    StateLimit(usize),
    /// The budget's deadline expired mid-search.
    Deadline,
    /// The budget's [`CancelToken`] was cancelled.
    Cancelled,
    /// A worker-pool task panicked; the panic was caught on the worker
    /// and converted to this error on the submitting thread.
    TaskPanicked,
    /// A deterministic fault-injection point fired (see [`crate::fault`]).
    FaultInjected,
}

impl EngineError {
    /// Whether a retry of the same query can succeed: `true` for
    /// transient conditions (deadline, cancellation, a panicked worker,
    /// an injected fault), `false` for a state-space blowup, which is
    /// deterministic at a fixed bound.
    pub fn is_retryable(&self) -> bool {
        !matches!(self, EngineError::StateLimit(_))
    }

    /// A stable machine-readable code (`state-limit`, `deadline`,
    /// `cancelled`, `task-panicked`, `fault-injected`) — the wire
    /// vocabulary of aborted query results.
    pub fn code(&self) -> &'static str {
        match self {
            EngineError::StateLimit(_) => "state-limit",
            EngineError::Deadline => "deadline",
            EngineError::Cancelled => "cancelled",
            EngineError::TaskPanicked => "task-panicked",
            EngineError::FaultInjected => "fault-injected",
        }
    }

    /// Parses the [`EngineError::code`] vocabulary back (with an optional
    /// `state-limit:<bound>` payload), for wire decoding.
    pub fn from_code(code: &str) -> Option<EngineError> {
        match code {
            "deadline" => Some(EngineError::Deadline),
            "cancelled" => Some(EngineError::Cancelled),
            "task-panicked" => Some(EngineError::TaskPanicked),
            "fault-injected" => Some(EngineError::FaultInjected),
            _ => {
                let rest = code.strip_prefix("state-limit")?;
                let bound = match rest.strip_prefix(':') {
                    Some(digits) => digits.parse().ok()?,
                    None if rest.is_empty() => 0,
                    None => return None,
                };
                Some(EngineError::StateLimit(bound))
            }
        }
    }
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::StateLimit(bound) => write!(f, "state-limit:{bound}"),
            other => f.write_str(other.code()),
        }
    }
}

impl std::error::Error for EngineError {}

/// A shared cancellation flag: clone it into a [`QueryBudget`], keep one
/// handle, and [`CancelToken::cancel`] retires the query at its next
/// budget check.
#[derive(Clone, Debug, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, uncancelled token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Requests cancellation. Idempotent; takes effect at the query's
    /// next budget check (a BFS level boundary or Tarjan chunk).
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Relaxed);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }
}

/// The resource budget of one engine query: a state bound, an optional
/// wall-clock deadline, and an optional [`CancelToken`].
///
/// # Examples
///
/// ```
/// use tm_automata::{CancelToken, EngineError, QueryBudget};
///
/// let token = CancelToken::new();
/// let budget = QueryBudget::new(1_000).with_cancel(token.clone());
/// assert!(budget.check_interrupt().is_ok());
/// token.cancel();
/// assert_eq!(budget.check_interrupt(), Err(EngineError::Cancelled));
/// assert_eq!(budget.check_states(1_000), Err(EngineError::StateLimit(1_000)));
/// ```
#[derive(Clone, Debug)]
pub struct QueryBudget {
    max_states: usize,
    deadline: Option<Instant>,
    cancel: Option<CancelToken>,
}

impl QueryBudget {
    /// A budget bounding interning tables at `max_states`, with no
    /// deadline and no cancellation.
    pub fn new(max_states: usize) -> Self {
        QueryBudget {
            max_states,
            deadline: None,
            cancel: None,
        }
    }

    /// A budget that never aborts (the bound is `usize::MAX`).
    pub fn unlimited() -> Self {
        QueryBudget::new(usize::MAX)
    }

    /// Sets an absolute deadline.
    pub fn with_deadline(mut self, deadline: Instant) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Sets a deadline `timeout` from now.
    pub fn with_timeout(self, timeout: Duration) -> Self {
        let deadline = Instant::now().checked_add(timeout);
        QueryBudget { deadline, ..self }
    }

    /// Attaches a cancellation token.
    pub fn with_cancel(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// The state bound.
    pub fn max_states(&self) -> usize {
        self.max_states
    }

    /// Checks cancellation, then the deadline. Cheap; engines call it at
    /// BFS level boundaries and Tarjan iteration chunks.
    pub fn check_interrupt(&self) -> Result<(), EngineError> {
        if let Some(token) = &self.cancel {
            if token.is_cancelled() {
                return Err(EngineError::Cancelled);
            }
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                return Err(EngineError::Deadline);
            }
        }
        Ok(())
    }

    /// Checks the state bound against the current size of an interning
    /// table, *before* a new state is added: `states` existing states
    /// plus the incoming one must not exceed `max_states`.
    pub fn check_states(&self, states: usize) -> Result<(), EngineError> {
        if states >= self.max_states {
            return Err(EngineError::StateLimit(self.max_states));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_bound_is_checked_pre_intern() {
        let budget = QueryBudget::new(3);
        assert_eq!(budget.max_states(), 3);
        assert!(budget.check_states(2).is_ok());
        assert_eq!(budget.check_states(3), Err(EngineError::StateLimit(3)));
        assert!(QueryBudget::unlimited().check_states(usize::MAX - 1).is_ok());
    }

    #[test]
    fn expired_deadline_interrupts() {
        let budget = QueryBudget::unlimited().with_timeout(Duration::ZERO);
        assert_eq!(budget.check_interrupt(), Err(EngineError::Deadline));
        let generous = QueryBudget::unlimited().with_timeout(Duration::from_secs(3600));
        assert!(generous.check_interrupt().is_ok());
    }

    #[test]
    fn cancellation_wins_over_deadline() {
        let token = CancelToken::new();
        let budget = QueryBudget::unlimited()
            .with_timeout(Duration::ZERO)
            .with_cancel(token.clone());
        token.cancel();
        assert!(token.is_cancelled());
        assert_eq!(budget.check_interrupt(), Err(EngineError::Cancelled));
    }

    #[test]
    fn codes_round_trip() {
        for error in [
            EngineError::StateLimit(42),
            EngineError::Deadline,
            EngineError::Cancelled,
            EngineError::TaskPanicked,
            EngineError::FaultInjected,
        ] {
            assert_eq!(EngineError::from_code(&error.to_string()), Some(error));
        }
        assert_eq!(EngineError::from_code("nope"), None);
        assert_eq!(EngineError::from_code("state-limit:x"), None);
        assert!(!EngineError::StateLimit(1).is_retryable());
        assert!(EngineError::Deadline.is_retryable());
    }
}
