//! A small in-repo implementation of the FxHash algorithm (the
//! rustc-hash / Firefox hasher): a non-cryptographic, multiply-rotate
//! hash that is dramatically faster than SipHash for the short keys this
//! workspace hashes in hot loops — state ids, state-id pairs, statements,
//! and bitset words.
//!
//! The default `std::collections::HashMap` hasher (SipHash 1-3) is
//! DoS-resistant but costs ~1ns/byte with a long setup; model-checking
//! inner loops hash millions of tiny keys and never face adversarial
//! input, so the trade is clear-cut. This is the "FxHash-style hasher
//! (small in-repo implementation)" referenced by the perf plan — no
//! external dependency.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant from the Firefox hash (a.k.a. `K` in
/// rustc-hash): close to 2^64 / φ, spreads bits well under wrapping
/// multiplication.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The FxHash state: one `u64` folded with rotate-xor-multiply.
#[derive(Clone, Copy, Debug, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(tail) | (rest.len() as u64) << 56);
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// [`std::hash::BuildHasher`] for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` using [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` using [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

/// Estimated heap footprint of a `HashMap`'s backing table: one
/// `(K, V)` slot plus one control byte per unit of capacity (the swiss
/// table layout). Only the table itself is counted — keys or values that
/// own further heap memory are counted at their inline size, like the
/// `Vec`-capacity accounting of the `heap_bytes()` methods this backs.
pub(crate) fn map_heap_bytes<K, V, S>(map: &HashMap<K, V, S>) -> usize {
    map.capacity() * (std::mem::size_of::<(K, V)>() + 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash + ?Sized>(value: &T) -> u64 {
        FxBuildHasher::default().hash_one(value)
    }

    #[test]
    fn deterministic_and_discriminating() {
        assert_eq!(hash_of(&(3usize, 7usize)), hash_of(&(3usize, 7usize)));
        assert_ne!(hash_of(&(3usize, 7usize)), hash_of(&(7usize, 3usize)));
        assert_ne!(hash_of(&1u64), hash_of(&2u64));
    }

    #[test]
    fn byte_tails_differ_by_length() {
        // A trailing zero byte must not collide with its absence.
        assert_ne!(hash_of(&[1u8, 0][..]), hash_of(&[1u8][..]));
        assert_ne!(hash_of(&"ab"), hash_of(&"ab\0"));
    }

    #[test]
    fn works_as_map_hasher() {
        let mut map: FxHashMap<(usize, usize), usize> = FxHashMap::default();
        for i in 0..1000 {
            map.insert((i, i * 2), i);
        }
        assert_eq!(map.len(), 1000);
        assert_eq!(map[&(41, 82)], 41);
    }
}
