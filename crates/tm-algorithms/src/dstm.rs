//! The dynamic software transactional memory, DSTM (paper §3.3.3,
//! Algorithm 3): writers *own* variables, acquiring ownership aborts the
//! previous owner, and commit validates the read set — conflicts at
//! ownership acquisition and at commit-time validation are referred to the
//! contention manager.

use std::fmt;

use tm_lang::{Command, ThreadId, VarSet};

use crate::algorithm::{other_threads, ExtCommand, Step, TmAlgorithm, TmState, MAX_THREADS};

/// Per-thread status of DSTM.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum DstmStatus {
    /// Default: either idle or executing normally.
    #[default]
    Finished,
    /// Killed by another thread (ownership stolen / invalidated at their
    /// validate); the next step of this thread must abort.
    Aborted,
    /// Read set validated; the commit may complete.
    Validated,
    /// A committing writer invalidated this thread's reads; it can still
    /// read owned variables but can never commit.
    Invalid,
}

/// State of DSTM: `⟨Status, rs, os⟩` per thread, plus the pending
/// function.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct DstmState {
    status: [DstmStatus; MAX_THREADS],
    rs: [VarSet; MAX_THREADS],
    os: [VarSet; MAX_THREADS],
    pending: [Option<Command>; MAX_THREADS],
}

impl DstmState {
    /// The status of thread `t`.
    pub fn status(&self, t: ThreadId) -> DstmStatus {
        self.status[t.index()]
    }

    /// The read set of thread `t`.
    pub fn read_set(&self, t: ThreadId) -> VarSet {
        self.rs[t.index()]
    }

    /// The ownership set of thread `t`.
    pub fn ownership_set(&self, t: ThreadId) -> VarSet {
        self.os[t.index()]
    }

    /// Kills thread `u`: status ← aborted, sets cleared (the treatment a
    /// victim receives from an owner steal or a validating committer).
    fn kill(&mut self, u: ThreadId) {
        self.status[u.index()] = DstmStatus::Aborted;
        self.rs[u.index()].clear();
        self.os[u.index()].clear();
    }
}

impl fmt::Debug for DstmState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "⟨Status: {:?}, rs: {:?}, os: {:?}, γ: {:?}⟩",
            &self.status, &self.rs, &self.os, &self.pending
        )
    }
}

impl TmState for DstmState {
    fn pending(&self, t: ThreadId) -> Option<Command> {
        self.pending[t.index()]
    }

    fn set_pending(&mut self, t: ThreadId, c: Option<Command>) {
        self.pending[t.index()] = c;
    }
}

/// The DSTM algorithm `A_dstm`.
///
/// Used bare, the algorithm resolves conflicts nondeterministically
/// (attacker steals **or** self-aborts); composed with a contention
/// manager (see [`WithContentionManager`](crate::WithContentionManager))
/// the manager picks.
///
/// # Examples
///
/// ```
/// use tm_algorithms::{DstmTm, TmAlgorithm};
/// use tm_lang::{Command, ThreadId, VarId};
///
/// let tm = DstmTm::new(2, 2);
/// let v = VarId::new(0);
/// let (t1, t2) = (ThreadId::new(0), ThreadId::new(1));
/// // t1 owns v (write = own + complete):
/// let q = tm.initial_state();
/// let q = tm.steps(&q, Command::Write(v), t1)[0].next;
/// // t2 writing v is now a conflict: steal or self-abort.
/// assert!(tm.is_conflict(&q, Command::Write(v), t2));
/// assert_eq!(tm.steps(&q, Command::Write(v), t2).len(), 2);
/// ```
#[derive(Clone, Copy, Debug)]
pub struct DstmTm {
    threads: usize,
    vars: usize,
}

impl DstmTm {
    /// Creates the DSTM algorithm for `threads` threads and `vars`
    /// variables.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is 0 or exceeds [`MAX_THREADS`], or `vars` is 0.
    pub fn new(threads: usize, vars: usize) -> Self {
        assert!((1..=MAX_THREADS).contains(&threads));
        assert!(vars >= 1);
        DstmTm { threads, vars }
    }
}

impl TmAlgorithm for DstmTm {
    type State = DstmState;

    fn name(&self) -> String {
        "dstm".to_owned()
    }

    fn threads(&self) -> usize {
        self.threads
    }

    fn vars(&self) -> usize {
        self.vars
    }

    fn initial_state(&self) -> DstmState {
        DstmState::default()
    }

    fn is_conflict(&self, q: &DstmState, c: Command, t: ThreadId) -> bool {
        match c {
            // (i) writing a variable owned by another thread;
            Command::Write(v) => {
                other_threads(self.threads, t).any(|u| q.os[u.index()].contains(v))
            }
            // (ii) committing while some owner holds a variable we read.
            Command::Commit => {
                q.status[t.index()] == DstmStatus::Finished
                    && other_threads(self.threads, t)
                        .any(|u| !q.rs[t.index()].is_disjoint(q.os[u.index()]))
            }
            Command::Read(_) => false,
        }
    }

    fn proper_steps(&self, q: &DstmState, c: Command, t: ThreadId) -> Vec<Step<DstmState>> {
        let ti = t.index();
        // A thread killed by someone else can only abort.
        if q.status[ti] == DstmStatus::Aborted {
            return Vec::new();
        }
        match c {
            Command::Read(v) => {
                if q.os[ti].contains(v) {
                    // Reading an owned variable is always consistent.
                    return vec![Step::complete(c, *q)];
                }
                if q.status[ti] == DstmStatus::Finished {
                    let mut next = *q;
                    next.rs[ti].insert(v);
                    return vec![Step::complete(c, next)];
                }
                Vec::new() // invalid/validated threads cannot take new reads
            }
            Command::Write(v) => {
                if q.os[ti].contains(v) {
                    return vec![Step::complete(c, *q)];
                }
                // Acquire ownership, aborting any current owner.
                let mut next = *q;
                next.os[ti].insert(v);
                for u in other_threads(self.threads, t) {
                    if q.os[u.index()].contains(v) {
                        next.kill(u);
                    }
                }
                vec![Step::internal(ExtCommand::Own(v), next)]
            }
            Command::Commit => match q.status[ti] {
                DstmStatus::Finished => {
                    // Validate: abort every thread owning a variable we
                    // read (at a conflict this is the "attack" option).
                    let mut next = *q;
                    next.status[ti] = DstmStatus::Validated;
                    for u in other_threads(self.threads, t) {
                        if !q.rs[ti].is_disjoint(q.os[u.index()]) {
                            next.kill(u);
                        }
                    }
                    vec![Step::internal(ExtCommand::Validate, next)]
                }
                DstmStatus::Validated => {
                    // Complete the commit: our writes become global;
                    // readers of our owned variables are invalidated.
                    let mut next = *q;
                    next.status[ti] = DstmStatus::Finished;
                    next.rs[ti].clear();
                    next.os[ti].clear();
                    for u in other_threads(self.threads, t) {
                        if !q.rs[u.index()].is_disjoint(q.os[ti]) {
                            next.status[u.index()] = DstmStatus::Invalid;
                        }
                    }
                    vec![Step::complete(c, next)]
                }
                DstmStatus::Invalid | DstmStatus::Aborted => Vec::new(),
            },
        }
    }

    fn abort_state(&self, q: &DstmState, t: ThreadId) -> DstmState {
        let mut next = *q;
        next.status[t.index()] = DstmStatus::Finished;
        next.rs[t.index()].clear();
        next.os[t.index()].clear();
        next
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm::Action;
    use tm_lang::VarId;

    fn read(v: usize) -> Command {
        Command::Read(VarId::new(v))
    }
    fn write(v: usize) -> Command {
        Command::Write(VarId::new(v))
    }
    fn t(i: usize) -> ThreadId {
        ThreadId::new(i)
    }

    /// Drives thread `i` through the full write of `v` (own + complete).
    fn do_write(tm: &DstmTm, q: DstmState, v: usize, i: usize) -> DstmState {
        let q = tm.steps(&q, write(v), t(i))[0].next;
        tm.steps(&q, write(v), t(i))[0].next
    }

    #[test]
    fn write_is_own_then_complete() {
        let tm = DstmTm::new(2, 2);
        let q0 = tm.initial_state();
        let s1 = tm.steps(&q0, write(0), t(0));
        assert_eq!(s1[0].action, Action::Internal(ExtCommand::Own(VarId::new(0))));
        let q1 = s1[0].next;
        assert!(q1.ownership_set(t(0)).contains(VarId::new(0)));
        assert_eq!(q1.pending(t(0)), Some(write(0)));
        let s2 = tm.steps(&q1, write(0), t(0));
        assert_eq!(s2[0].action, Action::Complete(ExtCommand::Base(write(0))));
    }

    #[test]
    fn ownership_steal_kills_victim() {
        let tm = DstmTm::new(2, 1);
        let q = do_write(&tm, tm.initial_state(), 0, 0);
        // t2 steals ownership of v1.
        let steps = tm.steps(&q, write(0), t(1));
        let steal = steps
            .iter()
            .find(|s| s.action == Action::Internal(ExtCommand::Own(VarId::new(0))))
            .expect("steal option exists");
        assert_eq!(steal.next.status(t(0)), DstmStatus::Aborted);
        assert!(steal.next.ownership_set(t(0)).is_empty());
        // ... and self-abort is also offered (conflict).
        assert!(steps.iter().any(|s| s.action.is_abort()));
    }

    #[test]
    fn killed_thread_can_only_abort() {
        let tm = DstmTm::new(2, 1);
        let q = do_write(&tm, tm.initial_state(), 0, 0);
        let q = tm
            .steps(&q, write(0), t(1))
            .into_iter()
            .find(|s| !s.action.is_abort())
            .unwrap()
            .next;
        for c in [read(0), write(0), Command::Commit] {
            let steps = tm.steps(&q, c, t(0));
            assert_eq!(steps.len(), 1, "{c:?}");
            assert!(steps[0].action.is_abort(), "{c:?}");
        }
    }

    #[test]
    fn optimistic_read_of_owned_variable_is_allowed() {
        let tm = DstmTm::new(2, 1);
        let q = do_write(&tm, tm.initial_state(), 0, 0);
        let steps = tm.steps(&q, read(0), t(1));
        assert!(!steps[0].action.is_abort());
    }

    #[test]
    fn commit_with_read_ownership_overlap_is_conflict_and_kills_owner() {
        let tm = DstmTm::new(2, 1);
        let mut q = tm.initial_state();
        q = tm.steps(&q, read(0), t(0))[0].next; // t1 reads v
        q = do_write(&tm, q, 0, 1); // t2 owns v
        assert!(tm.is_conflict(&q, Command::Commit, t(0)));
        let steps = tm.steps(&q, Command::Commit, t(0));
        let validate = steps
            .iter()
            .find(|s| s.action == Action::Internal(ExtCommand::Validate))
            .expect("validate option");
        assert_eq!(validate.next.status(t(1)), DstmStatus::Aborted);
        assert!(steps.iter().any(|s| s.action.is_abort()));
    }

    #[test]
    fn committing_writer_invalidates_readers() {
        let tm = DstmTm::new(2, 1);
        let mut q = tm.initial_state();
        q = tm.steps(&q, read(0), t(0))[0].next; // t1 reads v
        q = do_write(&tm, q, 0, 1); // t2 owns v
        q = tm.steps(&q, Command::Commit, t(1))[0].next; // validate
        q = tm.steps(&q, Command::Commit, t(1))[0].next; // complete
        assert_eq!(q.status(t(0)), DstmStatus::Invalid);
        // The invalid reader cannot commit: only abort remains.
        let steps = tm.steps(&q, Command::Commit, t(0));
        assert!(steps.iter().all(|s| s.action.is_abort()));
        // ... but it may still read variables it owns.
        let q2 = do_write(&tm, q, 0, 0); // re-own v (fresh transaction? no — still invalid)
        let read_steps = tm.steps(&q2, read(0), t(0));
        assert!(!read_steps[0].action.is_abort());
    }

    #[test]
    fn read_only_commit_validates_then_completes() {
        let tm = DstmTm::new(2, 1);
        let mut q = tm.initial_state();
        q = tm.steps(&q, read(0), t(0))[0].next;
        let s1 = tm.steps(&q, Command::Commit, t(0));
        assert_eq!(s1.len(), 1);
        assert_eq!(s1[0].action, Action::Internal(ExtCommand::Validate));
        let s2 = tm.steps(&s1[0].next, Command::Commit, t(0));
        assert_eq!(s2[0].action, Action::Complete(ExtCommand::Base(Command::Commit)));
        assert_eq!(s2[0].next, tm.initial_state());
    }
}
