//! Executing a TM algorithm under an explicit scheduler (§3.2, Table 1).
//!
//! The scheduler picks a thread at every step; the thread issues its
//! pending command if one exists, otherwise the next command of its
//! program. The TM answers with one of its transitions; the default policy
//! takes the first proper transition and falls back to abort — which is
//! exactly how the runs in the paper's Table 1 unfold.

use std::fmt;

use tm_lang::{Command, Statement, ThreadId, Word};

use crate::algorithm::{Action, TmAlgorithm};

/// One atomic step of a recorded run: `⟨q, c, (d, t), r⟩` without the
/// state.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct RunEntry {
    /// The scheduled thread.
    pub thread: ThreadId,
    /// The command being executed.
    pub command: Command,
    /// The TM's atomic action (extended command + response).
    pub action: Action,
}

impl fmt::Display for RunEntry {
    /// Paper Table 1 notation: extended command with a thread subscript,
    /// e.g. `(rl,1)1`, `v2`, `a1`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.action {
            Action::Abort => write!(f, "a{}", self.thread.number()),
            Action::Internal(d) | Action::Complete(d) => {
                write!(f, "{}{}", d, self.thread.number())
            }
        }
    }
}

/// A recorded run of a TM algorithm under a scheduler.
#[derive(Clone, Debug, Default)]
pub struct Run {
    entries: Vec<RunEntry>,
}

impl Run {
    /// The atomic steps of the run.
    pub fn entries(&self) -> &[RunEntry] {
        &self.entries
    }

    /// The run in the paper's Table 1 notation, comma-separated.
    pub fn to_notation(&self) -> String {
        self.entries
            .iter()
            .map(RunEntry::to_string)
            .collect::<Vec<_>>()
            .join(", ")
    }

    /// The word of the run: the sequence of successful statements.
    pub fn word(&self) -> Word {
        self.entries
            .iter()
            .filter_map(|e| e.action.statement(e.command, e.thread))
            .collect()
    }
}

impl fmt::Display for Run {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_notation())
    }
}

/// Error returned by [`execute_schedule`] when a scheduled thread has no
/// command to run or the TM offers no transition at all.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ScheduleError {
    step: usize,
    thread: ThreadId,
    reason: &'static str,
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "schedule step {} ({}): {}",
            self.step, self.thread, self.reason
        )
    }
}

impl std::error::Error for ScheduleError {}

/// Executes `tm` under an explicit schedule.
///
/// `programs[i]` is the command list of thread `i + 1`; `schedule` lists
/// 0-based thread indices, one per atomic step (so a command that needs
/// several TM steps must be scheduled several times, as in Table 1). At
/// each step the first proper transition is taken; if none exists, the
/// thread aborts. A command is consumed from its program when it starts; an
/// abort consumes the in-flight command.
///
/// # Errors
///
/// Fails if a scheduled thread has neither a pending command nor program
/// commands left, or if the TM offers no transition (a product with a
/// contention manager can deadlock a thread at a conflict).
///
/// # Examples
///
/// Table 1, row "2PL", schedule `111112…` (prefix shown):
///
/// ```
/// use tm_algorithms::{execute_schedule, TwoPhaseTm};
/// use tm_lang::{Command, VarId};
///
/// let tm = TwoPhaseTm::new(2, 2);
/// let t1 = [Command::Read(VarId::new(0)), Command::Write(VarId::new(1)), Command::Commit];
/// let run = execute_schedule(&tm, &[&t1, &[]], &[0, 0, 0, 0, 0])?;
/// assert_eq!(run.to_notation(), "(rl,1)1, (r,1)1, (wl,2)1, (w,2)1, c1");
/// assert_eq!(run.word().to_string(), "(r,1)1 (w,2)1 c1");
/// # Ok::<(), tm_algorithms::ScheduleError>(())
/// ```
pub fn execute_schedule<A: TmAlgorithm>(
    tm: &A,
    programs: &[&[Command]],
    schedule: &[usize],
) -> Result<Run, ScheduleError> {
    use crate::algorithm::TmState as _;

    let mut queues: Vec<std::collections::VecDeque<Command>> = programs
        .iter()
        .map(|p| p.iter().copied().collect())
        .collect();
    let mut state = tm.initial_state();
    let mut run = Run::default();

    for (step, &ti) in schedule.iter().enumerate() {
        let t = ThreadId::new(ti);
        let command = match state.pending(t) {
            Some(c) => c,
            None => queues
                .get_mut(ti)
                .and_then(|q| q.pop_front())
                .ok_or(ScheduleError {
                    step,
                    thread: t,
                    reason: "no command left in program",
                })?,
        };
        let steps = tm.steps(&state, command, t);
        let chosen = steps.first().ok_or(ScheduleError {
            step,
            thread: t,
            reason: "TM offers no transition (deadlocked by contention manager)",
        })?;
        run.entries.push(RunEntry {
            thread: t,
            command,
            action: chosen.action,
        });
        state = chosen.next.clone();
    }
    Ok(run)
}

/// The statements of a run's word, convenient for automaton membership
/// checks.
pub fn run_statements(run: &Run) -> Vec<Statement> {
    run.word().statements().to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dstm::DstmTm;
    use crate::sequential::SequentialTm;
    use tm_lang::VarId;

    fn read(v: usize) -> Command {
        Command::Read(VarId::new(v))
    }
    fn write(v: usize) -> Command {
        Command::Write(VarId::new(v))
    }

    #[test]
    fn sequential_table1_row_one() {
        // Scheduler 11122…: word (r,1)1 (w,2)1 c1 (w,1)2 c2.
        let tm = SequentialTm::new(2, 2);
        let t1 = [read(0), write(1), Command::Commit];
        let t2 = [write(0), Command::Commit];
        let run = execute_schedule(&tm, &[&t1, &t2], &[0, 0, 0, 1, 1]).unwrap();
        assert_eq!(run.word().to_string(), "(r,1)1 (w,2)1 c1 (w,1)2 c2");
    }

    #[test]
    fn sequential_table1_row_two_has_abort() {
        // Scheduler 112122…: t2 aborts while t1's transaction is open.
        let tm = SequentialTm::new(2, 2);
        let t1 = [read(0), write(1), Command::Commit];
        let t2 = [write(0), write(0), Command::Commit];
        let run = execute_schedule(&tm, &[&t1, &t2], &[0, 0, 1, 0, 1, 1]).unwrap();
        assert_eq!(
            run.word().to_string(),
            "(r,1)1 (w,2)1 a2 c1 (w,1)2 c2"
        );
    }

    #[test]
    fn abort_consumes_inflight_command() {
        let tm = SequentialTm::new(2, 1);
        let t1 = [read(0), Command::Commit];
        let t2 = [read(0), Command::Commit];
        // t1 opens, t2 aborts (its read is consumed), t1 closes, and t2's
        // remaining commit goes through as an empty transaction.
        let run = execute_schedule(&tm, &[&t1, &t2], &[0, 1, 0, 1]).unwrap();
        assert_eq!(run.word().to_string(), "(r,1)1 a2 c1 c2");
    }

    #[test]
    fn schedule_error_on_exhausted_program() {
        let tm = SequentialTm::new(2, 1);
        let err = execute_schedule(&tm, &[&[], &[]], &[0]).unwrap_err();
        assert!(err.to_string().contains("no command left"));
    }

    #[test]
    fn dstm_run_notation_includes_extended_commands() {
        let tm = DstmTm::new(2, 2);
        let t1 = [write(0), Command::Commit];
        let run = execute_schedule(&tm, &[&t1, &[]], &[0, 0, 0, 0]).unwrap();
        assert_eq!(run.to_notation(), "(o,1)1, (w,1)1, v1, c1");
        assert_eq!(run.word().to_string(), "(w,1)1 c1");
    }
}
