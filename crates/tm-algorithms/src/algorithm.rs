//! The TM-algorithm formalism of §3: `A = ⟨Q, q_init, D, φ, γ, δ⟩`.
//!
//! A TM algorithm reacts to program *commands* (read/write/commit) by
//! executing *extended commands* in atomic steps, each answered with a
//! response: `⊥` (more steps needed — the command stays *pending*), `0`
//! (the transaction is aborted), or `1` (the command completed).
//!
//! The paper's well-formedness rules are enforced structurally:
//!
//! * the pending function `γ` is part of every state ([`TmState`]) and is
//!   maintained by the framework (provided method [`TmAlgorithm::steps`]),
//!   so rules γ1–γ4 hold by construction;
//! * abort transitions exist exactly when a command is *abort-enabled*
//!   (no proper transition) or the *conflict function* `φ` is true — also
//!   enforced by [`TmAlgorithm::steps`];
//! * implementations only supply the proper (non-abort) transitions via
//!   [`TmAlgorithm::proper_steps`] and the per-thread reset state via
//!   [`TmAlgorithm::abort_state`].

use std::fmt;
use std::hash::Hash;

use tm_lang::{Command, Statement, StatementKind, ThreadId, VarId};

/// Maximum number of threads supported by the fixed-size state encodings.
///
/// The reduction theorems (§4, §6) make two threads sufficient for
/// verification; four leaves room for the scaling experiments.
pub const MAX_THREADS: usize = 4;

/// An extended command (`d ∈ D`): a base command or one of the TM-specific
/// atomic operations used while executing a command.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum ExtCommand {
    /// The base command itself completing.
    Base(Command),
    /// 2PL: acquire a shared (read) lock.
    RLock(VarId),
    /// 2PL: acquire an exclusive (write) lock.
    WLock(VarId),
    /// DSTM: acquire ownership of a variable, aborting the previous owner.
    Own(VarId),
    /// DSTM / TL2: validate the read set (atomic version).
    Validate,
    /// TL2: lock a write-set variable at commit time.
    Lock(VarId),
    /// Modified TL2: the version-check half of validation.
    RValidate,
    /// Modified TL2: the lock-check half of validation.
    ChkLock,
}

impl fmt::Display for ExtCommand {
    /// Paper Table 1 notation: `rl`, `wl`, `o`, `v`, `l`, `rv`, `k`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExtCommand::Base(Command::Read(v)) => write!(f, "(r,{})", v.number()),
            ExtCommand::Base(Command::Write(v)) => write!(f, "(w,{})", v.number()),
            ExtCommand::Base(Command::Commit) => write!(f, "c"),
            ExtCommand::RLock(v) => write!(f, "(rl,{})", v.number()),
            ExtCommand::WLock(v) => write!(f, "(wl,{})", v.number()),
            ExtCommand::Own(v) => write!(f, "(o,{})", v.number()),
            ExtCommand::Validate => write!(f, "v"),
            ExtCommand::Lock(v) => write!(f, "(l,{})", v.number()),
            ExtCommand::RValidate => write!(f, "rv"),
            ExtCommand::ChkLock => write!(f, "k"),
        }
    }
}

/// One atomic step of a TM algorithm: the extended action taken and the
/// response given to the program.
///
/// The paper's response set is `{⊥, 0, 1}`; the pairing rules (`d = abort
/// ⟺ r = 0`) make the following three-way enum exhaustive.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Action {
    /// Extended command executed, response `⊥`: the command stays pending.
    Internal(ExtCommand),
    /// Extended command executed, response `1`: the command completed.
    Complete(ExtCommand),
    /// Response `0`: the transaction of the issuing thread aborts.
    Abort,
}

impl Action {
    /// The extended statement `(d, t)`-component of this action, with
    /// `None` standing for `abort`.
    pub fn ext_command(&self) -> Option<ExtCommand> {
        match self {
            Action::Internal(d) | Action::Complete(d) => Some(*d),
            Action::Abort => None,
        }
    }

    /// `true` if this step answers `⊥`.
    pub fn is_internal(&self) -> bool {
        matches!(self, Action::Internal(_))
    }

    /// `true` if this step aborts the transaction.
    pub fn is_abort(&self) -> bool {
        matches!(self, Action::Abort)
    }

    /// The word-level statement emitted by this step for command `c` of
    /// thread `t`: completions emit `(c, t)`, aborts emit `(abort, t)`,
    /// internal steps emit nothing.
    pub fn statement(&self, c: Command, t: ThreadId) -> Option<Statement> {
        match self {
            Action::Internal(_) => None,
            Action::Complete(_) => Some(Statement::new(StatementKind::from(c), t)),
            Action::Abort => Some(Statement::new(StatementKind::Abort, t)),
        }
    }
}

impl fmt::Display for Action {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Action::Internal(d) => write!(f, "{d}/⊥"),
            Action::Complete(d) => write!(f, "{d}/1"),
            Action::Abort => write!(f, "a/0"),
        }
    }
}

/// A transition offered by a TM algorithm: the action plus the successor
/// state (pending bookkeeping is filled in by [`TmAlgorithm::steps`]).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Step<S> {
    /// The action taken.
    pub action: Action,
    /// The successor state.
    pub next: S,
}

impl<S> Step<S> {
    /// An internal (`⊥`) step.
    pub fn internal(d: ExtCommand, next: S) -> Self {
        Step {
            action: Action::Internal(d),
            next,
        }
    }

    /// A completing (`1`) step for base command `c`.
    pub fn complete(c: Command, next: S) -> Self {
        Step {
            action: Action::Complete(ExtCommand::Base(c)),
            next,
        }
    }

    /// A completing (`1`) step with an explicit extended command.
    pub fn complete_ext(d: ExtCommand, next: S) -> Self {
        Step {
            action: Action::Complete(d),
            next,
        }
    }
}

/// State of a TM algorithm; carries the pending function `γ` so that the
/// formalism's requirement "γ is a function of the state" holds
/// trivially.
pub trait TmState: Clone + Eq + Hash + fmt::Debug {
    /// `γ(q, t)`: the command thread `t` is in the middle of executing.
    fn pending(&self, t: ThreadId) -> Option<Command>;

    /// Overwrites `γ(q, t)` — used by the framework only.
    fn set_pending(&mut self, t: ThreadId, c: Option<Command>);
}

/// A TM algorithm in the paper's formalism. Implementations provide the
/// proper transitions, the conflict function, and the per-thread reset;
/// the provided methods derive the full transition relation (abort rules,
/// pending bookkeeping) and the enabled-command relation.
pub trait TmAlgorithm {
    /// The state type `Q`.
    type State: TmState;

    /// Human-readable name (e.g. `"dstm+aggressive"`), used in reports.
    fn name(&self) -> String;

    /// Number of threads `n` of the (most general) program instance.
    fn threads(&self) -> usize;

    /// Number of shared variables `k`.
    fn vars(&self) -> usize;

    /// The initial state `q_init` (no pending commands, empty sets).
    fn initial_state(&self) -> Self::State;

    /// The conflict function `φ(q, (c, t))`: `true` when executing `c`
    /// would require resolving a conflict, i.e. when a contention manager
    /// is consulted and self-abort becomes an alternative.
    fn is_conflict(&self, q: &Self::State, c: Command, t: ThreadId) -> bool;

    /// All non-abort transitions for the **enabled** command `c` of thread
    /// `t` in state `q`. Implementations need not touch the pending field
    /// of the successor; [`TmAlgorithm::steps`] maintains it.
    fn proper_steps(&self, q: &Self::State, c: Command, t: ThreadId) -> Vec<Step<Self::State>>;

    /// The state reached when thread `t` aborts in `q` (its per-thread
    /// bookkeeping reset; other threads untouched).
    fn abort_state(&self, q: &Self::State, t: ThreadId) -> Self::State;

    /// The full transition relation for enabled command `c` of thread `t`:
    /// the proper steps plus the abort transition when `c` is
    /// abort-enabled (no proper step) or in conflict (`φ` true), with the
    /// pending function updated per the formalism's rules.
    fn steps(&self, q: &Self::State, c: Command, t: ThreadId) -> Vec<Step<Self::State>> {
        let mut steps = self.proper_steps(q, c, t);
        if steps.is_empty() || self.is_conflict(q, c, t) {
            steps.push(Step {
                action: Action::Abort,
                next: self.abort_state(q, t),
            });
        }
        for step in &mut steps {
            let pending = match step.action {
                Action::Internal(_) => Some(c),
                Action::Complete(_) | Action::Abort => None,
            };
            step.next.set_pending(t, pending);
        }
        steps
    }

    /// The commands enabled for thread `t` in `q`: the pending command if
    /// any, otherwise every command.
    fn enabled_commands(&self, q: &Self::State, t: ThreadId) -> Vec<Command> {
        match q.pending(t) {
            Some(c) => vec![c],
            None => Command::all(self.vars()).collect(),
        }
    }

    /// Convenience iterator over this instance's thread ids.
    fn thread_ids(&self) -> Vec<ThreadId> {
        (0..self.threads()).map(ThreadId::new).collect()
    }
}

/// Helper: the thread ids `u ≠ t` of an `n`-thread instance.
pub(crate) fn other_threads(n: usize, t: ThreadId) -> impl Iterator<Item = ThreadId> {
    (0..n).map(ThreadId::new).filter(move |&u| u != t)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ext_command_display_matches_table1_notation() {
        assert_eq!(ExtCommand::RLock(VarId::new(0)).to_string(), "(rl,1)");
        assert_eq!(ExtCommand::Own(VarId::new(1)).to_string(), "(o,2)");
        assert_eq!(ExtCommand::Validate.to_string(), "v");
        assert_eq!(ExtCommand::Lock(VarId::new(1)).to_string(), "(l,2)");
        assert_eq!(ExtCommand::ChkLock.to_string(), "k");
        assert_eq!(ExtCommand::Base(Command::Commit).to_string(), "c");
    }

    #[test]
    fn action_statement_projection() {
        let t = ThreadId::new(0);
        let c = Command::Read(VarId::new(0));
        assert_eq!(
            Action::Internal(ExtCommand::RLock(VarId::new(0))).statement(c, t),
            None
        );
        assert_eq!(
            Action::Complete(ExtCommand::Base(c)).statement(c, t),
            Some(Statement::read(0, 0))
        );
        assert_eq!(Action::Abort.statement(c, t), Some(Statement::abort(0)));
    }

    #[test]
    fn other_threads_skips_self() {
        let us: Vec<ThreadId> = other_threads(3, ThreadId::new(1)).collect();
        assert_eq!(us, vec![ThreadId::new(0), ThreadId::new(2)]);
    }
}
