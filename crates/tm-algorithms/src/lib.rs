//! # tm-algorithms — transactional memory algorithms as transition systems
//!
//! Implementation of §3 of *"Model Checking Transactional Memories"*
//! (Guerraoui, Henzinger, Singh): a uniform formalism for TM algorithms
//! ([`TmAlgorithm`], with conflict function, pending function, extended
//! commands and ⊥/0/1 responses), the paper's four example TMs, the
//! contention-manager product, and the *most general program* semantics
//! that turns a TM algorithm into an automaton over statements.
//!
//! TMs provided:
//!
//! * [`SequentialTm`] — one transaction at a time (paper Alg. 1);
//! * [`TwoPhaseTm`] — two-phase locking (Alg. 2);
//! * [`DstmTm`] — DSTM with ownership stealing (Alg. 3);
//! * [`Tl2Tm`] — TL2 with commit-time locking and version-check
//!   validation (Alg. 4), including the paper's *modified TL2* with split
//!   (non-atomic) validation in either order ([`ValidationStyle`]).
//!
//! Contention managers: [`AggressiveCm`], [`PoliteCm`] (paper), plus the
//! finite [`KarmaCm`] and the deliberately P1-violating [`PastAbortsCm`]
//! (extensions), composed via [`WithContentionManager`].
//!
//! # Examples
//!
//! Build DSTM + aggressive and explore its language for two threads and
//! two variables:
//!
//! ```
//! use tm_algorithms::{most_general_nfa, AggressiveCm, DstmTm, WithContentionManager};
//!
//! let tm = WithContentionManager::new(DstmTm::new(2, 2), AggressiveCm);
//! let explored = most_general_nfa(&tm, 100_000);
//! assert!(explored.num_states() > 100);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod algorithm;
mod contention;
mod dstm;
mod explore;
mod runner;
mod sequential;
mod tl2;
mod two_phase;

pub use algorithm::{Action, ExtCommand, Step, TmAlgorithm, TmState, MAX_THREADS};
pub use contention::{
    AggressiveCm, CmState, ContentionManager, KarmaCm, PastAbortsCm, PoliteCm, Priorities,
    WithContentionManager,
};
pub use dstm::{DstmState, DstmStatus, DstmTm};
pub use explore::{
    check_pending_invariant, most_general_nfa, most_general_run_graph, MostGeneralRunSource,
    MostGeneralSource, RunLabel,
};
pub use runner::{execute_schedule, run_statements, Run, RunEntry, ScheduleError};
pub use sequential::{SeqState, SeqStatus, SequentialTm};
pub use tl2::{Tl2State, Tl2Status, Tl2Tm, ValidationStyle};
pub use two_phase::{TwoPhaseState, TwoPhaseTm};
