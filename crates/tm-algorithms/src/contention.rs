//! Contention managers and the TM × CM product construction (§3.1).
//!
//! A contention manager `cm = ⟨P, p_init, δcm⟩` watches the extended
//! statements `(d, t)` of a TM algorithm and *restricts* its behavior: at
//! a conflict (`φ(q, (c, t)) = true`) only actions with a δcm transition
//! remain available; outside conflicts the TM is unrestricted but the CM
//! state still advances along its transitions. Consequently
//! `L(A_cm) ⊆ L(A)` — which is why safety is verified once, without any
//! manager (§4), while liveness must be checked per manager (§6).

use std::fmt;
use std::hash::Hash;

use tm_lang::{Command, ThreadId};

use crate::algorithm::{Action, ExtCommand, Step, TmAlgorithm, TmState, MAX_THREADS};

/// A contention manager in the paper's formalism.
///
/// `δcm` is exposed as [`ContentionManager::transition`]: the successor CM
/// state for extended statement `(d, t)` — `None` both for "no transition"
/// and with `d = None` denoting the abort statement.
pub trait ContentionManager {
    /// CM state type `P`.
    type State: Clone + Eq + Hash + fmt::Debug;

    /// Human-readable name, e.g. `"aggressive"`.
    fn name(&self) -> String;

    /// The initial state `p_init`.
    fn initial_state(&self) -> Self::State;

    /// `δcm(p, (d, t))`: the successor state, or `None` if the manager has
    /// no transition for this statement. `d = None` stands for `abort`.
    fn transition(
        &self,
        p: &Self::State,
        d: Option<ExtCommand>,
        t: ThreadId,
    ) -> Option<Self::State>;
}

/// The *aggressive* contention manager (§3.3.3): every non-abort statement
/// allowed, abort never — at a conflict the attacker must attack, so a
/// transaction never aborts itself.
#[derive(Clone, Copy, Debug, Default)]
pub struct AggressiveCm;

impl ContentionManager for AggressiveCm {
    type State = ();

    fn name(&self) -> String {
        "aggressive".to_owned()
    }

    fn initial_state(&self) {}

    fn transition(&self, _p: &(), d: Option<ExtCommand>, _t: ThreadId) -> Option<()> {
        d.map(|_| ())
    }
}

/// The *polite* contention manager (§3.3.4): only abort statements
/// allowed — at a conflict the requesting transaction always aborts
/// itself.
#[derive(Clone, Copy, Debug, Default)]
pub struct PoliteCm;

impl ContentionManager for PoliteCm {
    type State = ();

    fn name(&self) -> String {
        "polite".to_owned()
    }

    fn initial_state(&self) {}

    fn transition(&self, _p: &(), d: Option<ExtCommand>, _t: ThreadId) -> Option<()> {
        match d {
            None => Some(()),
            Some(_) => None,
        }
    }
}

/// A finite Karma-style contention manager (extension beyond the paper,
/// after Scherer & Scott): each thread's priority is the number of
/// accesses completed in its current transaction, saturating at `cap`; at
/// a conflict the requester may attack iff its priority is at least every
/// other priority, and must back down (abort) otherwise.
///
/// The cap keeps the state space finite, which the paper points out is
/// essential for the method (§4: unbounded managers cannot be modelled).
#[derive(Clone, Copy, Debug)]
pub struct KarmaCm {
    threads: usize,
    cap: u8,
}

impl KarmaCm {
    /// Creates a Karma manager for `threads` threads with priorities
    /// saturating at `cap`.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is 0 or exceeds [`MAX_THREADS`], or `cap` is 0.
    pub fn new(threads: usize, cap: u8) -> Self {
        assert!((1..=MAX_THREADS).contains(&threads));
        assert!(cap > 0);
        KarmaCm { threads, cap }
    }
}

/// Per-thread saturating priorities — state of [`KarmaCm`] and
/// [`PastAbortsCm`].
pub type Priorities = [u8; MAX_THREADS];

impl ContentionManager for KarmaCm {
    type State = Priorities;

    fn name(&self) -> String {
        format!("karma{}", self.cap)
    }

    fn initial_state(&self) -> Priorities {
        [0; MAX_THREADS]
    }

    fn transition(
        &self,
        p: &Priorities,
        d: Option<ExtCommand>,
        t: ThreadId,
    ) -> Option<Priorities> {
        let ti = t.index();
        let top = (0..self.threads)
            .filter(|&u| u != ti)
            .map(|u| p[u])
            .max()
            .unwrap_or(0);
        match d {
            // Abort: allowed only when outranked; priority resets.
            None => {
                if p[ti] < top {
                    let mut next = *p;
                    next[ti] = 0;
                    Some(next)
                } else {
                    None
                }
            }
            // Commit completion resets priority; it is always allowed.
            Some(ExtCommand::Base(Command::Commit)) => {
                let mut next = *p;
                next[ti] = 0;
                Some(next)
            }
            // Accesses earn karma and are allowed while not outranked.
            Some(ExtCommand::Base(_)) => {
                if p[ti] >= top {
                    let mut next = *p;
                    next[ti] = (p[ti] + 1).min(self.cap);
                    Some(next)
                } else {
                    Some(*p)
                }
            }
            // TM-internal statements allowed iff not outranked.
            Some(_) => (p[ti] >= top).then_some(*p),
        }
    }
}

/// A deliberately **ill-structured** contention manager (extension): each
/// abort raises the thread's priority (saturating at `cap`); a commit
/// resets it; at a conflict the requester attacks iff its priority
/// strictly exceeds every other (so freshly started transactions always
/// yield). The paper (§4, P1) names exactly this shape —
/// "a contention manager that prioritizes transactions according to the
/// number of times it has aborted in the past" — as one that **violates**
/// the transaction-projection property P1, because removing an aborted
/// transaction changes later decisions. Used in tests to demonstrate the
/// limits of the reduction theorem.
#[derive(Clone, Copy, Debug)]
pub struct PastAbortsCm {
    threads: usize,
    cap: u8,
}

impl PastAbortsCm {
    /// Creates the manager for `threads` threads, priorities saturating at
    /// `cap`.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is 0 or exceeds [`MAX_THREADS`], or `cap` is 0.
    pub fn new(threads: usize, cap: u8) -> Self {
        assert!((1..=MAX_THREADS).contains(&threads));
        assert!(cap > 0);
        PastAbortsCm { threads, cap }
    }
}

impl ContentionManager for PastAbortsCm {
    type State = Priorities;

    fn name(&self) -> String {
        format!("past-aborts{}", self.cap)
    }

    fn initial_state(&self) -> Priorities {
        [0; MAX_THREADS]
    }

    fn transition(
        &self,
        p: &Priorities,
        d: Option<ExtCommand>,
        t: ThreadId,
    ) -> Option<Priorities> {
        let ti = t.index();
        let top = (0..self.threads)
            .filter(|&u| u != ti)
            .map(|u| p[u])
            .max()
            .unwrap_or(0);
        match d {
            None => {
                let mut next = *p;
                next[ti] = (p[ti] + 1).min(self.cap);
                Some(next)
            }
            Some(ExtCommand::Base(Command::Commit)) => {
                let mut next = *p;
                next[ti] = 0;
                Some(next)
            }
            Some(_) => (p[ti] > top).then_some(*p),
        }
    }
}

/// Product state of a TM algorithm and a contention manager.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct CmState<S, P> {
    /// TM-algorithm component.
    pub tm: S,
    /// Contention-manager component.
    pub cm: P,
}

impl<S: fmt::Debug, P: fmt::Debug> fmt::Debug for CmState<S, P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⟨{:?} × {:?}⟩", self.tm, self.cm)
    }
}

impl<S: TmState, P: Clone + Eq + Hash + fmt::Debug> TmState for CmState<S, P> {
    fn pending(&self, t: ThreadId) -> Option<Command> {
        self.tm.pending(t)
    }

    fn set_pending(&mut self, t: ThreadId, c: Option<Command>) {
        self.tm.set_pending(t, c);
    }
}

/// The product TM algorithm `A_cm` of a TM algorithm and a contention
/// manager (§3.1).
///
/// # Examples
///
/// ```
/// use tm_algorithms::{AggressiveCm, DstmTm, TmAlgorithm, WithContentionManager};
/// use tm_lang::{Command, ThreadId, VarId};
///
/// let tm = WithContentionManager::new(DstmTm::new(2, 1), AggressiveCm);
/// assert_eq!(tm.name(), "dstm+aggressive");
/// let v = VarId::new(0);
/// let (t1, t2) = (ThreadId::new(0), ThreadId::new(1));
/// let q = tm.initial_state();
/// let q = tm.steps(&q, Command::Write(v), t1)[0].next.clone();
/// // Conflict for t2 — but aggressive forbids self-abort, so only the
/// // ownership steal remains:
/// let steps = tm.steps(&q, Command::Write(v), t2);
/// assert_eq!(steps.len(), 1);
/// assert!(!steps[0].action.is_abort());
/// ```
#[derive(Clone, Copy, Debug)]
pub struct WithContentionManager<A, C> {
    tm: A,
    cm: C,
}

impl<A: TmAlgorithm, C: ContentionManager> WithContentionManager<A, C> {
    /// Composes a TM algorithm with a contention manager.
    pub fn new(tm: A, cm: C) -> Self {
        WithContentionManager { tm, cm }
    }

    /// The underlying TM algorithm.
    pub fn tm(&self) -> &A {
        &self.tm
    }

    /// The contention manager.
    pub fn cm(&self) -> &C {
        &self.cm
    }

    /// CM successor obeying product rule (iii): stay put if δcm has no
    /// transition (only legal outside conflicts).
    fn cm_advance(&self, p: &C::State, d: Option<ExtCommand>, t: ThreadId) -> C::State {
        self.cm.transition(p, d, t).unwrap_or_else(|| p.clone())
    }
}

impl<A: TmAlgorithm, C: ContentionManager> TmAlgorithm for WithContentionManager<A, C> {
    type State = CmState<A::State, C::State>;

    fn name(&self) -> String {
        format!("{}+{}", self.tm.name(), self.cm.name())
    }

    fn threads(&self) -> usize {
        self.tm.threads()
    }

    fn vars(&self) -> usize {
        self.tm.vars()
    }

    fn initial_state(&self) -> Self::State {
        CmState {
            tm: self.tm.initial_state(),
            cm: self.cm.initial_state(),
        }
    }

    fn is_conflict(&self, q: &Self::State, c: Command, t: ThreadId) -> bool {
        self.tm.is_conflict(&q.tm, c, t)
    }

    fn proper_steps(&self, q: &Self::State, c: Command, t: ThreadId) -> Vec<Step<Self::State>> {
        let conflict = self.tm.is_conflict(&q.tm, c, t);
        self.tm
            .proper_steps(&q.tm, c, t)
            .into_iter()
            .filter_map(|step| {
                let d = step.action.ext_command();
                let cm_next = match self.cm.transition(&q.cm, d, t) {
                    Some(p) => p,
                    // Rule (ii): at a conflict every statement needs a δcm
                    // transition; otherwise rule (iii) keeps the CM state.
                    None if conflict => return None,
                    None => q.cm.clone(),
                };
                Some(Step {
                    action: step.action,
                    next: CmState {
                        tm: step.next,
                        cm: cm_next,
                    },
                })
            })
            .collect()
    }

    fn abort_state(&self, q: &Self::State, t: ThreadId) -> Self::State {
        CmState {
            tm: self.tm.abort_state(&q.tm, t),
            cm: self.cm_advance(&q.cm, None, t),
        }
    }

    /// Product transition relation: CM-filtered proper steps, plus the
    /// abort transition when the base TM would offer it **and** — at a
    /// conflict — the manager has an abort transition.
    fn steps(&self, q: &Self::State, c: Command, t: ThreadId) -> Vec<Step<Self::State>> {
        let conflict = self.is_conflict(q, c, t);
        let base_abort_enabled = self.tm.proper_steps(&q.tm, c, t).is_empty();
        let mut steps = self.proper_steps(q, c, t);
        let abort_in_base = base_abort_enabled || conflict;
        let cm_allows_abort = !conflict || self.cm.transition(&q.cm, None, t).is_some();
        if abort_in_base && cm_allows_abort {
            steps.push(Step {
                action: Action::Abort,
                next: self.abort_state(q, t),
            });
        }
        for step in &mut steps {
            let pending = match step.action {
                Action::Internal(_) => Some(c),
                Action::Complete(_) | Action::Abort => None,
            };
            step.next.set_pending(t, pending);
        }
        steps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dstm::DstmTm;
    use crate::tl2::Tl2Tm;
    use tm_lang::VarId;

    fn t(i: usize) -> ThreadId {
        ThreadId::new(i)
    }
    fn write(v: usize) -> Command {
        Command::Write(VarId::new(v))
    }

    #[test]
    fn aggressive_removes_self_abort_at_conflict() {
        let tm = WithContentionManager::new(DstmTm::new(2, 1), AggressiveCm);
        let q = tm.initial_state();
        let q = tm.steps(&q, write(0), t(0))[0].next.clone(); // t1 owns v
        let steps = tm.steps(&q, write(0), t(1));
        assert_eq!(steps.len(), 1);
        assert!(!steps[0].action.is_abort());
    }

    #[test]
    fn polite_forces_self_abort_at_conflict() {
        let tm = WithContentionManager::new(Tl2Tm::new(2, 1), PoliteCm);
        let mut q = tm.initial_state();
        q = tm.steps(&q, write(0), t(0))[0].next.clone();
        q = tm.steps(&q, write(0), t(1))[0].next.clone();
        q = tm.steps(&q, Command::Commit, t(0))[0].next.clone(); // t1 locks v
        // t2's commit is a conflict: under polite only abort remains.
        let steps = tm.steps(&q, Command::Commit, t(1));
        assert_eq!(steps.len(), 1);
        assert!(steps[0].action.is_abort());
    }

    #[test]
    fn outside_conflicts_cm_does_not_restrict() {
        let tm = WithContentionManager::new(DstmTm::new(2, 2), PoliteCm);
        let q = tm.initial_state();
        let steps = tm.steps(&q, Command::Read(VarId::new(0)), t(0));
        assert_eq!(steps.len(), 1);
        assert!(!steps[0].action.is_abort());
    }

    #[test]
    fn aggressive_still_allows_abort_when_abort_enabled() {
        // A killed thread aborts through any non-conflicting command
        // (reads never conflict in DSTM).
        let tm = WithContentionManager::new(DstmTm::new(2, 1), AggressiveCm);
        let mut q = tm.initial_state();
        q = tm.steps(&q, write(0), t(0))[0].next.clone(); // t1 owns v
        q = tm.steps(&q, write(0), t(1))[0].next.clone(); // t2 steals (only option)
        let steps = tm.steps(&q, Command::Read(VarId::new(0)), t(0));
        assert_eq!(steps.len(), 1);
        assert!(steps[0].action.is_abort());
    }

    #[test]
    fn aggressive_deadlocks_killed_thread_on_conflicting_command() {
        // Rule (ii) of the product: at a conflict every statement —
        // including abort — needs a δcm transition. A killed thread whose
        // next command is itself a conflict is therefore stuck under the
        // aggressive manager.
        let tm = WithContentionManager::new(DstmTm::new(2, 1), AggressiveCm);
        let mut q = tm.initial_state();
        q = tm.steps(&q, write(0), t(0))[0].next.clone(); // t1 owns v
        q = tm.steps(&q, write(0), t(1))[0].next.clone(); // t2 steals; t1 killed
        let steps = tm.steps(&q, write(0), t(0));
        assert!(steps.is_empty());
    }

    #[test]
    fn karma_lets_richer_thread_attack_and_poorer_back_down() {
        let cm = KarmaCm::new(2, 3);
        let mut p = cm.initial_state();
        // t1 earns karma with two accesses.
        for _ in 0..2 {
            p = cm
                .transition(&p, Some(ExtCommand::Base(write(0))), t(0))
                .unwrap();
        }
        assert_eq!(p[0], 2);
        // t2 (karma 0) may not take internal attack steps...
        assert!(cm
            .transition(&p, Some(ExtCommand::Own(VarId::new(0))), t(1))
            .is_none());
        // ...but may abort.
        assert!(cm.transition(&p, None, t(1)).is_some());
        // t1 (outranking) may attack but not self-abort.
        assert!(cm
            .transition(&p, Some(ExtCommand::Own(VarId::new(0))), t(0))
            .is_some());
        assert!(cm.transition(&p, None, t(0)).is_none());
    }

    #[test]
    fn karma_priority_saturates_and_resets() {
        let cm = KarmaCm::new(2, 2);
        let mut p = cm.initial_state();
        for _ in 0..5 {
            p = cm
                .transition(&p, Some(ExtCommand::Base(write(0))), t(0))
                .unwrap();
        }
        assert_eq!(p[0], 2);
        p = cm
            .transition(&p, Some(ExtCommand::Base(Command::Commit)), t(0))
            .unwrap();
        assert_eq!(p[0], 0);
    }

    #[test]
    fn past_aborts_counts_aborts() {
        let cm = PastAbortsCm::new(2, 4);
        let mut p = cm.initial_state();
        p = cm.transition(&p, None, t(0)).unwrap();
        p = cm.transition(&p, None, t(0)).unwrap();
        assert_eq!(p[0], 2);
        // t2 is outranked: no attack.
        assert!(cm
            .transition(&p, Some(ExtCommand::Own(VarId::new(0))), t(1))
            .is_none());
        // t1 strictly outranks: attack allowed.
        assert!(cm
            .transition(&p, Some(ExtCommand::Own(VarId::new(0))), t(0))
            .is_some());
        // At equal priorities nobody attacks (fresh threads yield).
        let fresh = cm.initial_state();
        assert!(cm
            .transition(&fresh, Some(ExtCommand::Own(VarId::new(0))), t(0))
            .is_none());
    }

    #[test]
    fn product_name_concatenates() {
        let tm = WithContentionManager::new(DstmTm::new(2, 2), KarmaCm::new(2, 2));
        assert_eq!(tm.name(), "dstm+karma2");
    }
}
