//! The sequential TM (paper §3.3.1, Algorithm 1): transactions execute
//! one at a time; any step by a thread while another thread's transaction
//! is open is refused (and therefore aborts).

use std::fmt;

use tm_lang::{Command, ThreadId};

use crate::algorithm::{other_threads, Step, TmAlgorithm, TmState, MAX_THREADS};

/// Per-thread status of the sequential TM.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum SeqStatus {
    /// No open transaction.
    #[default]
    Finished,
    /// Transaction in progress.
    Started,
}

/// State of the sequential TM: `Status : T → {finished, started}`.
///
/// The sequential TM answers every command in a single step, so no command
/// is ever pending.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct SeqState {
    status: [SeqStatus; MAX_THREADS],
}

impl SeqState {
    /// The status of thread `t`.
    pub fn status(&self, t: ThreadId) -> SeqStatus {
        self.status[t.index()]
    }
}

impl fmt::Debug for SeqState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⟨Status: {:?}⟩", &self.status)
    }
}

impl TmState for SeqState {
    fn pending(&self, _t: ThreadId) -> Option<Command> {
        None
    }

    fn set_pending(&mut self, _t: ThreadId, c: Option<Command>) {
        debug_assert!(c.is_none(), "sequential TM never leaves a command pending");
    }
}

/// The sequential TM algorithm `A_seq` for `n` threads and `k` variables.
///
/// # Examples
///
/// ```
/// use tm_algorithms::{SequentialTm, TmAlgorithm};
/// use tm_lang::{Command, ThreadId, VarId};
///
/// let tm = SequentialTm::new(2, 2);
/// let q0 = tm.initial_state();
/// // Thread 1 starts a transaction...
/// let q1 = tm.steps(&q0, Command::Read(VarId::new(0)), ThreadId::new(0))
///     .into_iter().next().unwrap().next;
/// // ... now thread 2 can only abort.
/// let steps = tm.steps(&q1, Command::Write(VarId::new(1)), ThreadId::new(1));
/// assert!(steps.iter().all(|s| s.action.is_abort()));
/// ```
#[derive(Clone, Copy, Debug)]
pub struct SequentialTm {
    threads: usize,
    vars: usize,
}

impl SequentialTm {
    /// Creates the sequential TM for `threads` threads and `vars`
    /// variables.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is 0 or exceeds [`MAX_THREADS`], or `vars` is 0.
    pub fn new(threads: usize, vars: usize) -> Self {
        assert!((1..=MAX_THREADS).contains(&threads));
        assert!(vars >= 1);
        SequentialTm { threads, vars }
    }

    fn others_finished(&self, q: &SeqState, t: ThreadId) -> bool {
        other_threads(self.threads, t).all(|u| q.status[u.index()] == SeqStatus::Finished)
    }
}

impl TmAlgorithm for SequentialTm {
    type State = SeqState;

    fn name(&self) -> String {
        "sequential".to_owned()
    }

    fn threads(&self) -> usize {
        self.threads
    }

    fn vars(&self) -> usize {
        self.vars
    }

    fn initial_state(&self) -> SeqState {
        SeqState::default()
    }

    fn is_conflict(&self, _q: &SeqState, _c: Command, _t: ThreadId) -> bool {
        false
    }

    fn proper_steps(&self, q: &SeqState, c: Command, t: ThreadId) -> Vec<Step<SeqState>> {
        if !self.others_finished(q, t) {
            return Vec::new();
        }
        let mut next = *q;
        next.status[t.index()] = match c {
            Command::Read(_) | Command::Write(_) => SeqStatus::Started,
            Command::Commit => SeqStatus::Finished,
        };
        vec![Step::complete(c, next)]
    }

    fn abort_state(&self, q: &SeqState, t: ThreadId) -> SeqState {
        let mut next = *q;
        next.status[t.index()] = SeqStatus::Finished;
        next
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tm_lang::VarId;

    fn read(v: usize) -> Command {
        Command::Read(VarId::new(v))
    }

    #[test]
    fn solo_thread_runs_freely() {
        let tm = SequentialTm::new(2, 2);
        let t = ThreadId::new(0);
        let mut q = tm.initial_state();
        for c in [read(0), Command::Write(VarId::new(1)), Command::Commit] {
            let steps = tm.steps(&q, c, t);
            assert_eq!(steps.len(), 1);
            assert!(!steps[0].action.is_abort());
            q = steps[0].next;
        }
        assert_eq!(q, tm.initial_state());
    }

    #[test]
    fn second_thread_must_abort_while_first_is_open() {
        let tm = SequentialTm::new(2, 1);
        let q = tm.initial_state();
        let q = tm.steps(&q, read(0), ThreadId::new(0))[0].next;
        let steps = tm.steps(&q, read(0), ThreadId::new(1));
        assert_eq!(steps.len(), 1);
        assert!(steps[0].action.is_abort());
        // The abort does not disturb thread 1's open transaction.
        assert_eq!(steps[0].next.status(ThreadId::new(0)), SeqStatus::Started);
    }

    #[test]
    fn empty_commit_allowed_anytime_for_idle_thread() {
        let tm = SequentialTm::new(2, 1);
        let q = tm.initial_state();
        let steps = tm.steps(&q, Command::Commit, ThreadId::new(1));
        assert!(!steps[0].action.is_abort());
        assert_eq!(steps[0].next, q);
    }

    #[test]
    fn reachable_state_count_is_three_for_two_threads() {
        // Paper Table 2: "seq: 3".
        use crate::explore::most_general_nfa;
        let tm = SequentialTm::new(2, 2);
        let explored = most_general_nfa(&tm, 100);
        assert_eq!(explored.num_states(), 3);
    }
}
