//! The two-phase locking TM (paper §3.3.2, Algorithm 2): shared locks for
//! reads, exclusive locks for writes, all locks released at commit (or
//! abort). A thread whose lock request is blocked aborts — the formalism
//! has no waiting.

use std::fmt;

use tm_lang::{Command, ThreadId, VarSet};

use crate::algorithm::{other_threads, ExtCommand, Step, TmAlgorithm, TmState, MAX_THREADS};

/// State of the 2PL TM: per-thread shared-lock sets `rs`, exclusive-lock
/// sets `ws`, plus the pending function.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct TwoPhaseState {
    rs: [VarSet; MAX_THREADS],
    ws: [VarSet; MAX_THREADS],
    pending: [Option<Command>; MAX_THREADS],
}

impl TwoPhaseState {
    /// The shared-lock (read) set of thread `t`.
    pub fn read_locks(&self, t: ThreadId) -> VarSet {
        self.rs[t.index()]
    }

    /// The exclusive-lock (write) set of thread `t`.
    pub fn write_locks(&self, t: ThreadId) -> VarSet {
        self.ws[t.index()]
    }
}

impl fmt::Debug for TwoPhaseState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "⟨rs: {:?}, ws: {:?}, γ: {:?}⟩",
            &self.rs, &self.ws, &self.pending
        )
    }
}

impl TmState for TwoPhaseState {
    fn pending(&self, t: ThreadId) -> Option<Command> {
        self.pending[t.index()]
    }

    fn set_pending(&mut self, t: ThreadId, c: Option<Command>) {
        self.pending[t.index()] = c;
    }
}

/// The two-phase locking TM algorithm `A_2PL`.
///
/// # Examples
///
/// ```
/// use tm_algorithms::{TmAlgorithm, TwoPhaseTm};
/// use tm_lang::{Command, ThreadId, VarId};
///
/// let tm = TwoPhaseTm::new(2, 2);
/// let v = VarId::new(0);
/// // Thread 1 write-locks v ...
/// let q = tm.initial_state();
/// let q = tm.steps(&q, Command::Write(v), ThreadId::new(0))[0].next;
/// let q = tm.steps(&q, Command::Write(v), ThreadId::new(0))[0].next;
/// // ... so thread 2's read of v can only abort.
/// let steps = tm.steps(&q, Command::Read(v), ThreadId::new(1));
/// assert!(steps.iter().all(|s| s.action.is_abort()));
/// ```
#[derive(Clone, Copy, Debug)]
pub struct TwoPhaseTm {
    threads: usize,
    vars: usize,
}

impl TwoPhaseTm {
    /// Creates the 2PL TM for `threads` threads and `vars` variables.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is 0 or exceeds [`MAX_THREADS`], or `vars` is 0.
    pub fn new(threads: usize, vars: usize) -> Self {
        assert!((1..=MAX_THREADS).contains(&threads));
        assert!(vars >= 1);
        TwoPhaseTm { threads, vars }
    }
}

impl TmAlgorithm for TwoPhaseTm {
    type State = TwoPhaseState;

    fn name(&self) -> String {
        "2PL".to_owned()
    }

    fn threads(&self) -> usize {
        self.threads
    }

    fn vars(&self) -> usize {
        self.vars
    }

    fn initial_state(&self) -> TwoPhaseState {
        TwoPhaseState::default()
    }

    fn is_conflict(&self, _q: &TwoPhaseState, _c: Command, _t: ThreadId) -> bool {
        false
    }

    fn proper_steps(&self, q: &TwoPhaseState, c: Command, t: ThreadId) -> Vec<Step<TwoPhaseState>> {
        let ti = t.index();
        match c {
            Command::Read(v) => {
                if q.ws[ti].contains(v) || q.rs[ti].contains(v) {
                    // Lock already held: the read completes.
                    return vec![Step::complete(c, *q)];
                }
                // Acquire the shared lock, unless some other thread holds
                // the exclusive lock.
                if other_threads(self.threads, t).any(|u| q.ws[u.index()].contains(v)) {
                    return Vec::new();
                }
                let mut next = *q;
                next.rs[ti].insert(v);
                vec![Step::internal(ExtCommand::RLock(v), next)]
            }
            Command::Write(v) => {
                if q.ws[ti].contains(v) {
                    return vec![Step::complete(c, *q)];
                }
                // Acquire the exclusive lock, unless any other thread holds
                // any lock on v.
                if other_threads(self.threads, t)
                    .any(|u| q.ws[u.index()].contains(v) || q.rs[u.index()].contains(v))
                {
                    return Vec::new();
                }
                let mut next = *q;
                next.ws[ti].insert(v);
                vec![Step::internal(ExtCommand::WLock(v), next)]
            }
            Command::Commit => {
                let mut next = *q;
                next.rs[ti].clear();
                next.ws[ti].clear();
                vec![Step::complete(c, next)]
            }
        }
    }

    fn abort_state(&self, q: &TwoPhaseState, t: ThreadId) -> TwoPhaseState {
        let mut next = *q;
        next.rs[t.index()].clear();
        next.ws[t.index()].clear();
        next
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm::Action;
    use tm_lang::VarId;

    fn read(v: usize) -> Command {
        Command::Read(VarId::new(v))
    }
    fn write(v: usize) -> Command {
        Command::Write(VarId::new(v))
    }

    fn t(i: usize) -> ThreadId {
        ThreadId::new(i)
    }

    #[test]
    fn read_takes_two_steps_then_completes() {
        let tm = TwoPhaseTm::new(2, 2);
        let q0 = tm.initial_state();
        let s1 = tm.steps(&q0, read(0), t(0));
        assert_eq!(s1.len(), 1);
        assert_eq!(s1[0].action, Action::Internal(ExtCommand::RLock(VarId::new(0))));
        let q1 = s1[0].next;
        assert_eq!(q1.pending(t(0)), Some(read(0)));
        let s2 = tm.steps(&q1, read(0), t(0));
        assert_eq!(s2[0].action, Action::Complete(ExtCommand::Base(read(0))));
        assert_eq!(s2[0].next.pending(t(0)), None);
    }

    #[test]
    fn shared_locks_are_compatible() {
        let tm = TwoPhaseTm::new(2, 1);
        let mut q = tm.initial_state();
        q = tm.steps(&q, read(0), t(0))[0].next;
        let steps = tm.steps(&q, read(0), t(1));
        assert!(!steps[0].action.is_abort());
    }

    #[test]
    fn write_lock_blocks_readers_and_writers() {
        let tm = TwoPhaseTm::new(2, 1);
        let mut q = tm.initial_state();
        q = tm.steps(&q, write(0), t(0))[0].next; // wlock
        for c in [read(0), write(0)] {
            let steps = tm.steps(&q, c, t(1));
            assert_eq!(steps.len(), 1, "{c:?}");
            assert!(steps[0].action.is_abort(), "{c:?}");
        }
    }

    #[test]
    fn reader_blocks_writer_but_not_other_readers() {
        let tm = TwoPhaseTm::new(2, 1);
        let mut q = tm.initial_state();
        q = tm.steps(&q, read(0), t(0))[0].next; // rlock by t1
        let w = tm.steps(&q, write(0), t(1));
        assert!(w[0].action.is_abort());
    }

    #[test]
    fn lock_upgrade_by_owner_is_allowed() {
        let tm = TwoPhaseTm::new(2, 1);
        let mut q = tm.initial_state();
        q = tm.steps(&q, read(0), t(0))[0].next; // rlock
        q = tm.steps(&q, read(0), t(0))[0].next; // read completes
        let steps = tm.steps(&q, write(0), t(0)); // upgrade: own rlock only
        assert_eq!(
            steps[0].action,
            Action::Internal(ExtCommand::WLock(VarId::new(0)))
        );
    }

    #[test]
    fn commit_releases_all_locks() {
        let tm = TwoPhaseTm::new(2, 2);
        let mut q = tm.initial_state();
        q = tm.steps(&q, write(0), t(0))[0].next;
        q = tm.steps(&q, write(0), t(0))[0].next;
        q = tm.steps(&q, Command::Commit, t(0))[0].next;
        assert_eq!(q, tm.initial_state());
    }

    #[test]
    fn abort_releases_locks_of_aborting_thread_only() {
        let tm = TwoPhaseTm::new(2, 2);
        let mut q = tm.initial_state();
        q = tm.steps(&q, write(0), t(0))[0].next;
        q = tm.steps(&q, write(1), t(1))[0].next;
        let aborted = tm.abort_state(&q, t(0));
        assert!(aborted.write_locks(t(0)).is_empty());
        assert!(!aborted.write_locks(t(1)).is_empty());
    }

}
