//! Transactional Locking 2, TL2 (paper §3.3.4, Algorithm 4), with version
//! numbers modelled as per-thread *modified sets* `ms`: when a transaction
//! commits, its write set is added to the modified set of every thread
//! with a live transaction, and a read-set/modified-set intersection at
//! validation plays the role of the version check.
//!
//! Commit protocol: lock each write-set variable (stealing a lock aborts
//! the holder — a *conflict*, so a contention manager may force
//! self-abort instead), then validate, then complete.
//!
//! Validation comes in three styles (§5.4 of the paper):
//!
//! * [`ValidationStyle::Atomic`] — the published algorithm, where the
//!   version check (`rvalidate`) and the read-set lock check (`chklock`)
//!   happen in one atomic step (in real TL2 the version number and the
//!   lock bit share a memory word);
//! * [`ValidationStyle::ChkLockThenRValidate`] — split into two atomic
//!   steps in the **safe** order;
//! * [`ValidationStyle::RValidateThenChkLock`] — the paper's "modified
//!   TL2": split in the **unsafe** order. A full commit of a conflicting
//!   writer can slip between the two steps, making the TM non-serializable
//!   (Table 2's counterexample `(w,2)1 (w,1)2 (r,2)2 (r,1)1 c2 c1`).
//!
//! Faithfulness notes (see DESIGN.md): Algorithm 4 as printed references a
//! DSTM-only `os` set inside `validate` (a transcription artifact) and
//! omits the read-time lock check of real TL2; we implement `validate` as
//! the conjunction the running text demands, and refuse reads of variables
//! locked by other threads (also needed to reproduce the Table 3 liveness
//! counterexample for TL2 + polite).

use std::fmt;

use tm_lang::{Command, ThreadId, VarId, VarSet};

use crate::algorithm::{other_threads, ExtCommand, Step, TmAlgorithm, TmState, MAX_THREADS};

/// How commit-time validation is decomposed into atomic steps.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum ValidationStyle {
    /// `rvalidate` and `chklock` in one atomic step (published TL2).
    #[default]
    Atomic,
    /// Two steps, lock check first — the safe order.
    ChkLockThenRValidate,
    /// Two steps, version check first — the unsafe order ("modified TL2").
    RValidateThenChkLock,
}

/// Per-thread status of TL2.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum Tl2Status {
    /// Idle or executing normally.
    #[default]
    Finished,
    /// Read set validated; the commit may complete.
    Validated,
    /// A competing committer stole one of this thread's commit locks; the
    /// next step must abort.
    Aborted,
}

/// State of TL2: `⟨Status, rs, ws, ls, ms⟩` per thread, the pending
/// function, and (for the split validation styles) a per-thread flag
/// recording that the first validation half succeeded.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Tl2State {
    status: [Tl2Status; MAX_THREADS],
    rs: [VarSet; MAX_THREADS],
    ws: [VarSet; MAX_THREADS],
    ls: [VarSet; MAX_THREADS],
    ms: [VarSet; MAX_THREADS],
    half_validated: [bool; MAX_THREADS],
    pending: [Option<Command>; MAX_THREADS],
}

impl Tl2State {
    /// The status of thread `t`.
    pub fn status(&self, t: ThreadId) -> Tl2Status {
        self.status[t.index()]
    }

    /// The read set of thread `t`.
    pub fn read_set(&self, t: ThreadId) -> VarSet {
        self.rs[t.index()]
    }

    /// The write set of thread `t`.
    pub fn write_set(&self, t: ThreadId) -> VarSet {
        self.ws[t.index()]
    }

    /// The lock set of thread `t`.
    pub fn lock_set(&self, t: ThreadId) -> VarSet {
        self.ls[t.index()]
    }

    /// The modified set of thread `t` (variables committed by others since
    /// `t`'s transaction began — the version-check abstraction).
    pub fn modified_set(&self, t: ThreadId) -> VarSet {
        self.ms[t.index()]
    }

    /// Clears every per-thread component of `t` (commit/abort cleanup).
    fn reset(&mut self, t: ThreadId) {
        let ti = t.index();
        self.status[ti] = Tl2Status::Finished;
        self.rs[ti].clear();
        self.ws[ti].clear();
        self.ls[ti].clear();
        self.ms[ti].clear();
        self.half_validated[ti] = false;
    }

    /// `true` if thread `u` has a live transaction whose reads could be
    /// invalidated by a commit (used for the modified-set broadcast).
    fn is_active(&self, u: ThreadId) -> bool {
        !self.rs[u.index()].is_empty() || !self.ws[u.index()].is_empty()
    }
}

impl fmt::Debug for Tl2State {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "⟨Status: {:?}, rs: {:?}, ws: {:?}, ls: {:?}, ms: {:?}, hv: {:?}, γ: {:?}⟩",
            &self.status, &self.rs, &self.ws, &self.ls, &self.ms, &self.half_validated,
            &self.pending
        )
    }
}

impl TmState for Tl2State {
    fn pending(&self, t: ThreadId) -> Option<Command> {
        self.pending[t.index()]
    }

    fn set_pending(&mut self, t: ThreadId, c: Option<Command>) {
        self.pending[t.index()] = c;
    }
}

/// The TL2 algorithm `A_TL2`, parameterized by its [`ValidationStyle`].
///
/// # Examples
///
/// ```
/// use tm_algorithms::{Tl2Tm, TmAlgorithm, ValidationStyle};
///
/// let tl2 = Tl2Tm::new(2, 2);
/// assert_eq!(tl2.name(), "TL2");
/// let modified = Tl2Tm::with_validation(2, 2, ValidationStyle::RValidateThenChkLock);
/// assert_eq!(modified.name(), "modified-TL2");
/// ```
#[derive(Clone, Copy, Debug)]
pub struct Tl2Tm {
    threads: usize,
    vars: usize,
    validation: ValidationStyle,
}

impl Tl2Tm {
    /// Creates the published (atomic-validation) TL2 for `threads` threads
    /// and `vars` variables.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is 0 or exceeds [`MAX_THREADS`], or `vars` is 0.
    pub fn new(threads: usize, vars: usize) -> Self {
        Self::with_validation(threads, vars, ValidationStyle::Atomic)
    }

    /// Creates a TL2 variant with an explicit validation decomposition.
    ///
    /// # Panics
    ///
    /// Same as [`Tl2Tm::new`].
    pub fn with_validation(threads: usize, vars: usize, validation: ValidationStyle) -> Self {
        assert!((1..=MAX_THREADS).contains(&threads));
        assert!(vars >= 1);
        Tl2Tm {
            threads,
            vars,
            validation,
        }
    }

    /// The validation style of this instance.
    pub fn validation(&self) -> ValidationStyle {
        self.validation
    }

    /// `rvalidate`: the read set has not been overwritten by a commit
    /// since the transaction began (version check).
    fn rvalidate_ok(&self, q: &Tl2State, t: ThreadId) -> bool {
        q.rs[t.index()].is_disjoint(q.ms[t.index()])
    }

    /// `chklock`: no read-set variable is currently locked by another
    /// thread.
    fn chklock_ok(&self, q: &Tl2State, t: ThreadId) -> bool {
        other_threads(self.threads, t).all(|u| q.rs[t.index()].is_disjoint(q.ls[u.index()]))
    }

    /// All write-set locks held.
    fn locks_complete(&self, q: &Tl2State, t: ThreadId) -> bool {
        q.ws[t.index()] == q.ls[t.index()]
    }

    /// Whether `v` is locked by a thread other than `t`.
    fn locked_by_other(&self, q: &Tl2State, v: VarId, t: ThreadId) -> bool {
        other_threads(self.threads, t).any(|u| q.ls[u.index()].contains(v))
    }

    /// The commit-phase steps available once all locks are held.
    fn validation_steps(&self, q: &Tl2State, t: ThreadId) -> Vec<Step<Tl2State>> {
        let ti = t.index();
        let mut steps = Vec::new();
        match self.validation {
            ValidationStyle::Atomic => {
                if self.rvalidate_ok(q, t) && self.chklock_ok(q, t) {
                    let mut next = *q;
                    next.status[ti] = Tl2Status::Validated;
                    steps.push(Step::internal(ExtCommand::Validate, next));
                }
            }
            ValidationStyle::ChkLockThenRValidate => {
                if !q.half_validated[ti] {
                    if self.chklock_ok(q, t) {
                        let mut next = *q;
                        next.half_validated[ti] = true;
                        steps.push(Step::internal(ExtCommand::ChkLock, next));
                    }
                } else if self.rvalidate_ok(q, t) {
                    let mut next = *q;
                    next.half_validated[ti] = false;
                    next.status[ti] = Tl2Status::Validated;
                    steps.push(Step::internal(ExtCommand::RValidate, next));
                }
            }
            ValidationStyle::RValidateThenChkLock => {
                if !q.half_validated[ti] {
                    if self.rvalidate_ok(q, t) {
                        let mut next = *q;
                        next.half_validated[ti] = true;
                        steps.push(Step::internal(ExtCommand::RValidate, next));
                    }
                } else if self.chklock_ok(q, t) {
                    let mut next = *q;
                    next.half_validated[ti] = false;
                    next.status[ti] = Tl2Status::Validated;
                    steps.push(Step::internal(ExtCommand::ChkLock, next));
                }
            }
        }
        steps
    }
}

impl TmAlgorithm for Tl2Tm {
    type State = Tl2State;

    fn name(&self) -> String {
        match self.validation {
            ValidationStyle::Atomic => "TL2".to_owned(),
            ValidationStyle::ChkLockThenRValidate => "TL2-split-safe".to_owned(),
            ValidationStyle::RValidateThenChkLock => "modified-TL2".to_owned(),
        }
    }

    fn threads(&self) -> usize {
        self.threads
    }

    fn vars(&self) -> usize {
        self.vars
    }

    fn initial_state(&self) -> Tl2State {
        Tl2State::default()
    }

    fn is_conflict(&self, q: &Tl2State, c: Command, t: ThreadId) -> bool {
        // Commit-time lock conflict: some write-set variable is locked by
        // another thread.
        c == Command::Commit
            && q.ws[t.index()]
                .iter()
                .any(|v| self.locked_by_other(q, v, t))
    }

    fn proper_steps(&self, q: &Tl2State, c: Command, t: ThreadId) -> Vec<Step<Tl2State>> {
        let ti = t.index();
        if q.status[ti] == Tl2Status::Aborted {
            return Vec::new();
        }
        match c {
            Command::Read(v) => {
                if q.ws[ti].contains(v) {
                    // Read own (buffered) write.
                    return vec![Step::complete(c, *q)];
                }
                if q.ms[ti].contains(v) || self.locked_by_other(q, v, t) {
                    // Version changed since the transaction began, or the
                    // variable is mid-commit elsewhere: the read would be
                    // inconsistent.
                    return Vec::new();
                }
                let mut next = *q;
                next.rs[ti].insert(v);
                vec![Step::complete(c, next)]
            }
            Command::Write(v) => {
                // Writes are buffered; always succeed.
                let mut next = *q;
                next.ws[ti].insert(v);
                vec![Step::complete(c, next)]
            }
            Command::Commit => match q.status[ti] {
                Tl2Status::Finished => {
                    if !self.locks_complete(q, t) {
                        // Lock acquisition phase: one step per unlocked
                        // write-set variable (any order — this is where
                        // the state space fans out). Taking a lock held by
                        // another thread aborts that thread.
                        let mut steps = Vec::new();
                        for v in q.ws[ti].difference(q.ls[ti]) {
                            let mut next = *q;
                            next.ls[ti].insert(v);
                            for u in other_threads(self.threads, t) {
                                if q.ls[u.index()].contains(v) {
                                    next.status[u.index()] = Tl2Status::Aborted;
                                }
                            }
                            steps.push(Step::internal(ExtCommand::Lock(v), next));
                        }
                        return steps;
                    }
                    self.validation_steps(q, t)
                }
                Tl2Status::Validated => {
                    let mut next = *q;
                    // Broadcast the write set into the modified set of
                    // every thread with a live transaction (the
                    // version-number bump).
                    for u in other_threads(self.threads, t) {
                        if q.is_active(u) {
                            next.ms[u.index()].extend_with(q.ws[ti]);
                        }
                    }
                    next.reset(t);
                    vec![Step::complete(c, next)]
                }
                Tl2Status::Aborted => Vec::new(),
            },
        }
    }

    fn abort_state(&self, q: &Tl2State, t: ThreadId) -> Tl2State {
        let mut next = *q;
        next.reset(t);
        next
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm::Action;

    fn read(v: usize) -> Command {
        Command::Read(VarId::new(v))
    }
    fn write(v: usize) -> Command {
        Command::Write(VarId::new(v))
    }
    fn t(i: usize) -> ThreadId {
        ThreadId::new(i)
    }

    /// Runs thread `i` through the listed commands, always taking the
    /// first step, and asserts no abort happens.
    fn drive(tm: &Tl2Tm, mut q: Tl2State, i: usize, cmds: &[Command]) -> Tl2State {
        for &c in cmds {
            loop {
                let steps = tm.steps(&q, c, t(i));
                let step = &steps[0];
                assert!(!step.action.is_abort(), "unexpected abort on {c:?}");
                q = step.next;
                if !step.action.is_internal() {
                    break;
                }
            }
        }
        q
    }

    #[test]
    fn reads_and_writes_complete_in_one_step() {
        let tm = Tl2Tm::new(2, 2);
        let q = tm.initial_state();
        let s = tm.steps(&q, read(0), t(0));
        assert_eq!(s.len(), 1);
        assert!(!s[0].action.is_internal());
        let s = tm.steps(&q, write(0), t(0));
        assert!(!s[0].action.is_internal());
    }

    #[test]
    fn commit_locks_validates_completes() {
        let tm = Tl2Tm::new(2, 2);
        let mut q = tm.initial_state();
        q = drive(&tm, q, 0, &[write(0), write(1)]);
        // Two lock orders available.
        let locks = tm.steps(&q, Command::Commit, t(0));
        assert_eq!(locks.len(), 2);
        q = locks[0].next;
        q = tm.steps(&q, Command::Commit, t(0))[0].next; // second lock
        let validate = tm.steps(&q, Command::Commit, t(0));
        assert_eq!(validate[0].action, Action::Internal(ExtCommand::Validate));
        q = validate[0].next;
        assert_eq!(q.status(t(0)), Tl2Status::Validated);
        q = tm.steps(&q, Command::Commit, t(0))[0].next;
        assert_eq!(q, tm.initial_state());
    }

    #[test]
    fn committed_write_invalidates_live_readers_via_modified_set() {
        let tm = Tl2Tm::new(2, 2);
        let mut q = tm.initial_state();
        // t2 starts a transaction by reading v2 (stays live).
        q = drive(&tm, q, 1, &[read(1)]);
        // t1 writes v1 and commits fully.
        q = drive(&tm, q, 0, &[write(0), Command::Commit]);
        assert!(q.modified_set(t(1)).contains(VarId::new(0)));
        // t2's read of v1 must now refuse (version changed).
        let s = tm.steps(&q, read(0), t(1));
        assert!(s.iter().all(|st| st.action.is_abort()));
    }

    #[test]
    fn commit_does_not_pollute_idle_threads() {
        let tm = Tl2Tm::new(2, 1);
        let mut q = tm.initial_state();
        q = drive(&tm, q, 0, &[write(0), Command::Commit]);
        // t2 was idle: its modified set must stay empty, so it can read.
        assert!(q.modified_set(t(1)).is_empty());
        let s = tm.steps(&q, read(0), t(1));
        assert!(!s[0].action.is_abort());
    }

    #[test]
    fn read_of_locked_variable_refuses() {
        let tm = Tl2Tm::new(2, 1);
        let mut q = tm.initial_state();
        q = drive(&tm, q, 0, &[write(0)]);
        q = tm.steps(&q, Command::Commit, t(0))[0].next; // lock v1
        let s = tm.steps(&q, read(0), t(1));
        assert!(s.iter().all(|st| st.action.is_abort()));
    }

    #[test]
    fn lock_steal_is_conflict_and_aborts_holder() {
        let tm = Tl2Tm::new(2, 1);
        let mut q = tm.initial_state();
        q = drive(&tm, q, 0, &[write(0)]);
        q = drive(&tm, q, 1, &[write(0)]);
        q = tm.steps(&q, Command::Commit, t(0))[0].next; // t1 locks v1
        assert!(tm.is_conflict(&q, Command::Commit, t(1)));
        let steps = tm.steps(&q, Command::Commit, t(1));
        let steal = steps
            .iter()
            .find(|s| matches!(s.action, Action::Internal(ExtCommand::Lock(_))))
            .expect("steal available");
        assert_eq!(steal.next.status(t(0)), Tl2Status::Aborted);
        assert!(steps.iter().any(|s| s.action.is_abort()));
    }

    #[test]
    fn aborted_holder_can_only_abort() {
        let tm = Tl2Tm::new(2, 1);
        let mut q = tm.initial_state();
        q = drive(&tm, q, 0, &[write(0)]);
        q = drive(&tm, q, 1, &[write(0)]);
        q = tm.steps(&q, Command::Commit, t(0))[0].next; // t1 locks
        let steal = tm
            .steps(&q, Command::Commit, t(1))
            .into_iter()
            .find(|s| !s.action.is_abort())
            .unwrap();
        let q = steal.next;
        let s = tm.steps(&q, Command::Commit, t(0));
        assert!(s.iter().all(|st| st.action.is_abort()));
    }

    #[test]
    fn stale_read_set_fails_validation() {
        let tm = Tl2Tm::new(2, 2);
        let mut q = tm.initial_state();
        q = drive(&tm, q, 1, &[read(0)]); // t2 reads v1
        q = drive(&tm, q, 0, &[write(0), Command::Commit]); // t1 commits v1
        // t2 (read-only) tries to commit: validation must fail → abort.
        let s = tm.steps(&q, Command::Commit, t(1));
        assert!(s.iter().all(|st| st.action.is_abort()));
    }

    #[test]
    fn split_safe_variant_orders_chklock_first() {
        let tm = Tl2Tm::with_validation(2, 1, ValidationStyle::ChkLockThenRValidate);
        let mut q = tm.initial_state();
        q = drive(&tm, q, 0, &[read(0)]);
        let s1 = tm.steps(&q, Command::Commit, t(0));
        assert_eq!(s1[0].action, Action::Internal(ExtCommand::ChkLock));
        let s2 = tm.steps(&s1[0].next, Command::Commit, t(0));
        assert_eq!(s2[0].action, Action::Internal(ExtCommand::RValidate));
    }

    #[test]
    fn split_unsafe_variant_orders_rvalidate_first() {
        let tm = Tl2Tm::with_validation(2, 1, ValidationStyle::RValidateThenChkLock);
        let mut q = tm.initial_state();
        q = drive(&tm, q, 0, &[read(0)]);
        let s1 = tm.steps(&q, Command::Commit, t(0));
        assert_eq!(s1[0].action, Action::Internal(ExtCommand::RValidate));
        let s2 = tm.steps(&s1[0].next, Command::Commit, t(0));
        assert_eq!(s2[0].action, Action::Internal(ExtCommand::ChkLock));
    }

    #[test]
    fn unsafe_split_admits_the_paper_counterexample_interleaving() {
        // (w,2)1 (w,1)2 (r,2)2 (r,1)1 c2 c1 with both commits succeeding:
        // t2 finishes chklock before t1 locks v2, and t1's rvalidate runs
        // before t2's commit completes — so neither notices the other.
        let tm = Tl2Tm::with_validation(2, 2, ValidationStyle::RValidateThenChkLock);
        let mut q = tm.initial_state();
        q = drive(&tm, q, 0, &[write(1)]); // t1 writes v2
        q = drive(&tm, q, 1, &[write(0), read(1)]); // t2 writes v1, reads v2
        q = drive(&tm, q, 0, &[read(0)]); // t1 reads v1
        let step = |q: &Tl2State, i: usize, expect: &str| {
            let steps = tm.steps(q, Command::Commit, t(i));
            let s = &steps[0];
            assert!(!s.action.is_abort(), "abort at {expect}");
            s.next
        };
        q = step(&q, 1, "t2 lock v1");
        q = step(&q, 1, "t2 rvalidate");
        q = step(&q, 1, "t2 chklock"); // v2 not locked yet: passes
        q = step(&q, 0, "t1 lock v2");
        q = step(&q, 0, "t1 rvalidate"); // ms(t1) still empty: passes
        q = step(&q, 1, "t2 commit"); // c2 — ms(t1) += {v1}, locks freed
        q = step(&q, 0, "t1 chklock"); // locks freed: passes (the bug!)
        let s = tm.steps(&q, Command::Commit, t(0));
        assert!(!s[0].action.is_abort()); // c1 — non-serializable outcome
        assert_eq!(s[0].next, tm.initial_state());
    }

    #[test]
    fn atomic_validation_blocks_the_same_interleaving() {
        let tm = Tl2Tm::new(2, 2);
        let mut q = tm.initial_state();
        q = drive(&tm, q, 0, &[write(1)]);
        q = drive(&tm, q, 1, &[write(0), read(1)]);
        q = drive(&tm, q, 0, &[read(0)]);
        q = tm.steps(&q, Command::Commit, t(0))[0].next; // t1 locks v2
        // t2's commit: lock v1, then validate must fail (v2 in rs(t2) is
        // locked by t1) — or, after t1 commits, rvalidate fails. Either
        // way t2 can never complete; check the immediate path:
        q = tm.steps(&q, Command::Commit, t(1))[0].next; // t2 locks v1
        let s = tm.steps(&q, Command::Commit, t(1));
        assert!(s.iter().all(|st| st.action.is_abort()));
    }
}
