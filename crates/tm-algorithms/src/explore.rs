//! Applying a TM algorithm to the *most general program* (§3.2): from
//! every state, every thread may issue every enabled command, and the TM
//! answers by any of its transitions.
//!
//! Two views of the resulting transition system are produced:
//!
//! * the **word-level** NFA over statements `Ŝ` — internal (`⊥`-response)
//!   steps become ε-moves, completions emit `(c, t)`, aborts emit
//!   `(abort, t)`; its language is `L(A)`, the input to the safety checks;
//! * the **run-level** graph, in which every atomic step (including
//!   internal ones) is an edge labelled with thread, command, and action —
//!   the input to the liveness loop search of §6.

use tm_lang::{Command, Statement, ThreadId};

use tm_automata::{
    explore, Explored, LabeledGraph, LetterId, SuccessorSource, TransitionSystem, EPSILON,
};

use crate::algorithm::{Action, TmAlgorithm, TmState};

/// Word-level view: labels are statements, internal steps are ε.
struct WordLevel<'a, A>(&'a A);

impl<A: TmAlgorithm> TransitionSystem for WordLevel<'_, A> {
    type State = A::State;
    type Label = Statement;

    fn initial(&self) -> A::State {
        self.0.initial_state()
    }

    fn successors(&self, state: &A::State, out: &mut Vec<(Option<Statement>, A::State)>) {
        for t in self.0.thread_ids() {
            for c in self.0.enabled_commands(state, t) {
                for step in self.0.steps(state, c, t) {
                    out.push((step.action.statement(c, t), step.next));
                }
            }
        }
    }
}

/// Explores `L(A)` for the most general program as an NFA over statements.
///
/// The returned [`Explored`] keeps the TM states behind the automaton ids,
/// and its `nfa.num_states()` is the "Size" column of the paper's Table 2.
///
/// # Panics
///
/// Panics if the reachable state space exceeds `max_states`.
///
/// # Examples
///
/// ```
/// use tm_algorithms::{most_general_nfa, SequentialTm};
///
/// let explored = most_general_nfa(&SequentialTm::new(2, 2), 100);
/// assert_eq!(explored.num_states(), 3); // paper Table 2, row "seq"
/// assert!(explored.nfa.accepts(&"(r,1)1 c1".parse::<tm_lang::Word>()
///     .unwrap().statements().to_vec()));
/// ```
pub fn most_general_nfa<A: TmAlgorithm>(
    tm: &A,
    max_states: usize,
) -> Explored<A::State, Statement> {
    explore(&WordLevel(tm), max_states)
        .unwrap_or_else(|error| panic!("most-general-program exploration failed: {error}"))
}

/// The most general program of a TM algorithm as a lazy
/// [`SuccessorSource`]: the word-level transition system of
/// [`most_general_nfa`], but stepped on demand by the on-the-fly product
/// engine ([`tm_automata::check_inclusion_otf`]) instead of being
/// materialized into an [`tm_automata::Nfa`] up front.
///
/// The source is built over the *specification's* interned alphabet
/// (extended with every statement of the instance, so letter lookups in
/// the successor hot path never miss): statements the specification knows
/// keep its letter ids, statements outside its alphabet get extension ids
/// that the engine reports as immediate violations.
///
/// # Examples
///
/// ```
/// use tm_algorithms::{MostGeneralSource, SequentialTm};
/// use tm_automata::{check_inclusion_otf_threads, Alphabet};
///
/// // A toy "specification alphabet" containing only commits: every
/// // read/write completion is then a violation.
/// let tm = SequentialTm::new(2, 2);
/// let alphabet = Alphabet::from_letters(&"c1".parse::<tm_lang::Word>()
///     .unwrap().statements().to_vec());
/// let source = MostGeneralSource::new(&tm, alphabet.clone());
/// assert_eq!(source.alphabet().len(), 12); // extended to all of Ŝ
/// ```
pub struct MostGeneralSource<'a, A> {
    tm: &'a A,
    alphabet: tm_automata::Alphabet<Statement>,
}

impl<'a, A: TmAlgorithm> MostGeneralSource<'a, A> {
    /// Builds the source over (an extension of) the given interned
    /// alphabet — pass a clone of the specification's alphabet
    /// (`spec.alphabet().clone()`) so letter ids agree with the
    /// specification's.
    pub fn new(tm: &'a A, mut alphabet: tm_automata::Alphabet<Statement>) -> Self {
        for statement in tm_lang::Alphabet::new(tm.threads(), tm.vars()).statements() {
            alphabet.intern(&statement);
        }
        MostGeneralSource { tm, alphabet }
    }

    /// The extended alphabet the source emits letter ids over.
    pub fn alphabet(&self) -> &tm_automata::Alphabet<Statement> {
        &self.alphabet
    }
}

impl<A: TmAlgorithm + Sync> SuccessorSource for MostGeneralSource<'_, A>
where
    A::State: Send + Sync,
{
    type State = A::State;
    type Label = Statement;

    fn initial_states(&self, out: &mut Vec<A::State>) {
        out.push(self.tm.initial_state());
    }

    fn successors(&self, state: &A::State, out: &mut Vec<(LetterId, A::State)>) {
        for t in self.tm.thread_ids() {
            for c in self.tm.enabled_commands(state, t) {
                for step in self.tm.steps(state, c, t) {
                    let letter = match step.action.statement(c, t) {
                        None => EPSILON,
                        Some(s) => self
                            .alphabet
                            .get(&s)
                            .expect("all instance statements are interned"),
                    };
                    out.push((letter, step.next));
                }
            }
        }
    }

    fn letter(&self, id: LetterId) -> Statement {
        *self.alphabet.letter(id)
    }
}

/// An edge of the run-level transition graph: one atomic TM step.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct RunLabel {
    /// The scheduled thread.
    pub thread: ThreadId,
    /// The command being executed.
    pub command: Command,
    /// The atomic action taken.
    pub action: Action,
}

impl RunLabel {
    /// `true` if this step aborts a transaction (response 0).
    pub fn is_abort(self) -> bool {
        self.action.is_abort()
    }

    /// `true` if this step completes a commit command (a commit
    /// statement).
    pub fn is_commit(self) -> bool {
        matches!(self.action, Action::Complete(_)) && self.command == Command::Commit
    }

    /// The word-level statement emitted by this step, if any.
    pub fn statement(self) -> Option<Statement> {
        self.action.statement(self.command, self.thread)
    }
}

impl std::fmt::Display for RunLabel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.action {
            Action::Abort => write!(f, "a{}", self.thread.number()),
            Action::Internal(d) | Action::Complete(d) => {
                write!(f, "{}{}", d, self.thread.number())
            }
        }
    }
}

/// Run-level view: every step is a labelled edge.
struct RunLevel<'a, A>(&'a A);

impl<A: TmAlgorithm> TransitionSystem for RunLevel<'_, A> {
    type State = A::State;
    type Label = RunLabel;

    fn initial(&self) -> A::State {
        self.0.initial_state()
    }

    fn successors(&self, state: &A::State, out: &mut Vec<(Option<RunLabel>, A::State)>) {
        for t in self.0.thread_ids() {
            for c in self.0.enabled_commands(state, t) {
                for step in self.0.steps(state, c, t) {
                    let label = RunLabel {
                        thread: t,
                        command: c,
                        action: step.action,
                    };
                    out.push((Some(label), step.next));
                }
            }
        }
    }
}

/// The most general program of a TM algorithm at the **run level** as a
/// lazy [`tm_automata::RunGraphSource`]: the same transition system as
/// [`most_general_run_graph`], but stepped on demand by the compiled
/// liveness engine ([`tm_automata::CompiledRunGraph::build`]) so the
/// labelled edge list is never materialized. Successor order matches
/// [`most_general_run_graph`]'s exactly, which is what makes the engine's
/// state numbering — and hence its lassos — identical to the reference
/// checker's.
///
/// # Examples
///
/// ```
/// use tm_algorithms::{MostGeneralRunSource, SequentialTm};
/// use tm_automata::CompiledRunGraph;
///
/// let tm = SequentialTm::new(2, 1);
/// let (graph, states) = CompiledRunGraph::build(&MostGeneralRunSource::new(&tm), 1_000)
///     .expect("within the state bound");
/// assert_eq!(graph.num_states(), states.len());
/// assert!(graph.num_edges() > 0);
/// ```
pub struct MostGeneralRunSource<'a, A>(&'a A);

impl<'a, A: TmAlgorithm> MostGeneralRunSource<'a, A> {
    /// Wraps a TM algorithm (× contention manager) instance.
    pub fn new(tm: &'a A) -> Self {
        MostGeneralRunSource(tm)
    }
}

impl<A: TmAlgorithm> tm_automata::RunGraphSource for MostGeneralRunSource<'_, A> {
    type State = A::State;
    type Label = RunLabel;

    fn initial_state(&self) -> A::State {
        self.0.initial_state()
    }

    fn successors(&self, state: &A::State, out: &mut Vec<(RunLabel, A::State)>) {
        for t in self.0.thread_ids() {
            for c in self.0.enabled_commands(state, t) {
                for step in self.0.steps(state, c, t) {
                    let label = RunLabel {
                        thread: t,
                        command: c,
                        action: step.action,
                    };
                    out.push((label, step.next));
                }
            }
        }
    }

    fn classify(&self, label: &RunLabel) -> tm_automata::LabelClass {
        tm_automata::LabelClass {
            thread: label.thread.index(),
            is_commit: label.is_commit(),
            is_abort: label.is_abort(),
            emits_statement: label.statement().is_some(),
        }
    }
}

/// The run-level transition graph of the TM on the most general program,
/// plus the interned TM states.
///
/// # Panics
///
/// Panics if the reachable state space exceeds `max_states`.
pub fn most_general_run_graph<A: TmAlgorithm>(
    tm: &A,
    max_states: usize,
) -> (LabeledGraph<RunLabel>, Vec<A::State>) {
    let explored = explore(&RunLevel(tm), max_states)
        .unwrap_or_else(|error| panic!("run-level exploration failed: {error}"));
    let mut graph = LabeledGraph::new(explored.num_states());
    for from in 0..explored.num_states() {
        for (label, to) in explored.nfa.transitions_from(from) {
            let label = label.expect("run-level edges are always labelled");
            graph.add_edge(from, label, *to);
        }
    }
    (graph, explored.states)
}

/// Checks that an exploration never produced a state whose pending command
/// disagrees with its outgoing transitions — a structural sanity check of
/// the formalism's γ-rules, used in tests.
pub fn check_pending_invariant<A: TmAlgorithm>(tm: &A, states: &[A::State]) -> bool {
    states.iter().all(|q| {
        tm.thread_ids().iter().all(|&t| {
            match q.pending(t) {
                // A pending command restricts the thread to that command.
                Some(c) => tm.enabled_commands(q, t) == vec![c],
                None => tm.enabled_commands(q, t).len() == Command::all(tm.vars()).count(),
            }
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sequential::SequentialTm;
    use crate::two_phase::TwoPhaseTm;
    use tm_lang::Word;

    fn word(s: &str) -> Vec<Statement> {
        s.parse::<Word>().unwrap().statements().to_vec()
    }

    #[test]
    fn sequential_language_contains_table1_words() {
        let explored = most_general_nfa(&SequentialTm::new(2, 2), 100);
        assert!(explored.nfa.accepts(&word("(r,1)1 (w,2)1 c1 (w,1)2 c2")));
        assert!(explored.nfa.accepts(&word("(r,1)1 (w,2)1 a2 c1 (w,1)2 c2")));
        // Interleaving two open transactions is impossible:
        assert!(!explored.nfa.accepts(&word("(r,1)1 (w,1)2")));
    }

    #[test]
    fn two_phase_language_contains_table1_words() {
        let explored = most_general_nfa(&TwoPhaseTm::new(2, 2), 10_000);
        assert!(explored.nfa.accepts(&word("(r,1)1 (w,2)1 c1")));
        assert!(explored.nfa.accepts(&word("a2 (r,1)1 (w,2)1 c1")));
        // A read of a write-locked variable cannot succeed:
        assert!(!explored.nfa.accepts(&word("(w,1)1 (r,1)2")));
        // ... but both threads can read-share:
        assert!(explored.nfa.accepts(&word("(r,1)1 (r,1)2 c1 c2")));
    }

    #[test]
    fn run_graph_and_nfa_have_same_state_count() {
        let tm = TwoPhaseTm::new(2, 2);
        let explored = most_general_nfa(&tm, 10_000);
        let (graph, states) = most_general_run_graph(&tm, 10_000);
        assert_eq!(explored.num_states(), states.len());
        assert!(graph.num_edges() >= explored.nfa.num_transitions());
    }

    #[test]
    fn run_source_matches_materialized_run_graph() {
        // The compiled engine's state numbering AND edge enumeration must
        // be identical to the seed path's — lasso parity depends on it.
        let tm = TwoPhaseTm::new(2, 2);
        let (graph, states) = most_general_run_graph(&tm, 10_000);
        let (compiled, compiled_states) =
            tm_automata::CompiledRunGraph::build(&MostGeneralRunSource::new(&tm), 10_000).unwrap();
        assert_eq!(states, compiled_states);
        let seed_edges: Vec<(usize, RunLabel, usize)> =
            graph.edges().map(|(f, l, t)| (f, *l, t)).collect();
        let engine_edges: Vec<(usize, RunLabel, usize)> =
            compiled.edges().map(|(f, l, t)| (f, *l, t)).collect();
        assert_eq!(seed_edges, engine_edges);
    }

    #[test]
    fn pending_invariant_holds_for_all_tms() {
        let tm = TwoPhaseTm::new(2, 2);
        let (_, states) = most_general_run_graph(&tm, 10_000);
        assert!(check_pending_invariant(&tm, &states));
    }

    #[test]
    fn run_label_display() {
        use crate::algorithm::ExtCommand;
        use tm_lang::VarId;
        let label = RunLabel {
            thread: ThreadId::new(0),
            command: Command::Read(VarId::new(0)),
            action: Action::Internal(ExtCommand::RLock(VarId::new(0))),
        };
        assert_eq!(label.to_string(), "(rl,1)1");
        assert!(!label.is_commit());
    }
}
