//! Walks through the paper's illustrative examples: the words of
//! **Figures 1 and 2** (strict serializability and opacity analyses), the
//! commit-blocking conditions **C1–C4 of Figure 3**, and the **Theorem 3**
//! equivalence of the nondeterministic and deterministic specifications.
//!
//! ```bash
//! cargo run --release --example paper_figures
//! ```

use tm_modelcheck::automata::check_equivalence_antichain;
use tm_modelcheck::lang::{
    is_opaque, is_strictly_serializable, SafetyProperty, Word,
};
use tm_modelcheck::spec::{DetSpec, NondetSpec};

fn analyze(label: &str, text: &str) {
    let w: Word = text.parse().expect("valid word syntax");
    println!("{label}: {w}");
    println!(
        "  strictly serializable: {}   opaque: {}",
        is_strictly_serializable(&w),
        is_opaque(&w),
    );
}

fn main() {
    println!("--- Figure 1: strict serializability ---");
    // (a) x = t1 reads v1, writes v2; y = t2 writes v1; z = t3 reads v2, v1.
    analyze("Fig. 1(a)", "(w,1)2 (r,1)1 (r,2)3 c2 (w,2)1 (r,1)3 c1 c3");
    analyze("Fig. 1(a) without z's commit", "(w,1)2 (r,1)1 (r,2)3 c2 (w,2)1 (r,1)3 c1");
    // (b) three threads, three variables.
    analyze("Fig. 1(b)", "(w,1)2 (r,2)2 (r,3)3 (r,1)1 c2 (w,2)3 (w,3)1 c1 c3");

    println!("\n--- Figure 2: opacity ---");
    // (a) unfinished z reads an inconsistent snapshot: SS but not opaque.
    analyze("Fig. 2(a)", "(w,1)2 (r,1)1 (r,2)3 c2 (w,2)1 (r,1)3 c1");
    // (b) an aborted reader forbids x's later commit.
    analyze("Fig. 2(b)", "(w,1)2 (r,1)1 c2 (r,2)3 a3 (w,2)1 c1");

    println!("\n--- Figure 3: conditions C1-C4 (commits the spec disallows) ---");
    let spec = NondetSpec::new(SafetyProperty::StrictSerializability, 2, 2);
    let nfa = spec.to_nfa(1_000_000).nfa;
    let conditions = [
        // C1: x serializes before y; y commits a write of v2; x then reads
        // v2 — observing a value from its own future.
        ("C1", "(r,1)1 (w,1)2 (w,2)2 c2 (r,2)1 c1"),
        // C2: x serializes before y, x writes v2, y reads v2 before x's
        // commit (pre-x value) — yet both commit.
        ("C2", "(r,1)1 (w,2)1 (w,1)2 (r,2)2 c2 c1"),
        // C3: x before y, both write v2, y commits first.
        ("C3", "(r,1)1 (w,2)1 (w,1)2 (w,2)2 c2 c1"),
        // C4: mutual read-before-commit — the w1 cycle of Table 2.
        ("C4", "(w,2)1 (w,1)2 (r,2)2 (r,1)1 c2 c1"),
    ];
    for (name, text) in conditions {
        let w: Word = text.parse().expect("valid word");
        println!(
            "{name}: {w}  →  in L(Σ_ss): {}   (oracle: {})",
            nfa.accepts(w.statements()),
            is_strictly_serializable(&w),
        );
    }

    println!("\n--- Theorem 3: L(Σ) = L(Σᵈ) via antichains ---");
    for property in SafetyProperty::all() {
        let nondet = NondetSpec::new(property, 2, 2).to_nfa(1_000_000);
        let (det, _) = DetSpec::new(property, 2, 2).to_dfa(1_000_000);
        let result = check_equivalence_antichain(&nondet.nfa, &det.to_nfa());
        println!(
            "{property}: nondet {} states, det {} states, equivalent: {}",
            nondet.num_states(),
            det.num_states(),
            result.holds(),
        );
    }
}
