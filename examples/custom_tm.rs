//! Using the checker as a TM **designer's tool** (§1: "we expect our
//! verification tool to be useful to TM designers"): implement a new TM
//! algorithm against the [`TmAlgorithm`] trait and model check it.
//!
//! The example TM is an *optimistic* design that buffers writes and locks
//! nothing — transactions validate nothing at commit. The checker finds
//! the expected opacity (and strict-serializability) violation, and the
//! structural-property harness confirms the design is at least within the
//! scope of the reduction theorem.
//!
//! ```bash
//! cargo run --release --example custom_tm
//! ```

use tm_modelcheck::algorithms::{Step, TmAlgorithm, TmState, MAX_THREADS};
use tm_modelcheck::checker::{check_all_structural, check_safety};
use tm_modelcheck::lang::{Command, SafetyProperty, ThreadId, VarSet};

/// State of the naive optimistic TM: read/write sets per thread (only so
/// that commits are observable events; nothing is ever validated).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
struct NaiveState {
    rs: [VarSet; MAX_THREADS],
    ws: [VarSet; MAX_THREADS],
    pending: [Option<Command>; MAX_THREADS],
}

impl TmState for NaiveState {
    fn pending(&self, t: ThreadId) -> Option<Command> {
        self.pending[t.index()]
    }
    fn set_pending(&mut self, t: ThreadId, c: Option<Command>) {
        self.pending[t.index()] = c;
    }
}

/// A TM that never aborts anybody and never validates: reads and writes
/// always succeed, commits always succeed. Fast — and wrong.
#[derive(Clone, Copy, Debug)]
struct NaiveOptimisticTm {
    threads: usize,
    vars: usize,
}

impl TmAlgorithm for NaiveOptimisticTm {
    type State = NaiveState;

    fn name(&self) -> String {
        "naive-optimistic".to_owned()
    }
    fn threads(&self) -> usize {
        self.threads
    }
    fn vars(&self) -> usize {
        self.vars
    }
    fn initial_state(&self) -> NaiveState {
        NaiveState::default()
    }
    fn is_conflict(&self, _q: &NaiveState, _c: Command, _t: ThreadId) -> bool {
        false
    }

    fn proper_steps(&self, q: &NaiveState, c: Command, t: ThreadId) -> Vec<Step<NaiveState>> {
        let mut next = *q;
        let ti = t.index();
        match c {
            Command::Read(v) => {
                next.rs[ti].insert(v);
            }
            Command::Write(v) => {
                next.ws[ti].insert(v);
            }
            Command::Commit => {
                next.rs[ti].clear();
                next.ws[ti].clear();
            }
        }
        vec![Step::complete(c, next)]
    }

    fn abort_state(&self, q: &NaiveState, t: ThreadId) -> NaiveState {
        let mut next = *q;
        next.rs[t.index()].clear();
        next.ws[t.index()].clear();
        next
    }
}

fn main() {
    let tm = NaiveOptimisticTm { threads: 2, vars: 2 };

    // Step 1 (paper §8): check the structural properties, so the (2,2)
    // verdict generalizes.
    println!("structural properties of {}:", tm.name());
    for report in check_all_structural(&tm, 5) {
        println!(
            "  {}: {} ({} pairs checked)",
            report.property,
            if report.holds() { "ok" } else { "VIOLATED" },
            report.pairs_checked,
        );
    }

    // Step 2: model check both safety properties.
    for property in SafetyProperty::all() {
        let verdict = check_safety(&tm, property);
        match verdict.counterexample() {
            None => println!("{property}: verified"),
            Some(w) => println!("{property}: VIOLATED — shortest counterexample: {w}"),
        }
    }

    // The fix would be commit-time validation — exactly what separates
    // this strawman from TL2. Compare:
    let tl2 = tm_modelcheck::algorithms::Tl2Tm::new(2, 2);
    let verdict = check_safety(&tl2, SafetyProperty::Opacity);
    println!("TL2 (with validation): opacity {}", if verdict.holds() { "verified" } else { "violated" });
}
