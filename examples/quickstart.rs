//! Quickstart: verify a transactional memory in a few lines.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use tm_modelcheck::algorithms::{
    AggressiveCm, DstmTm, PoliteCm, Tl2Tm, ValidationStyle, WithContentionManager,
};
use tm_modelcheck::checker::{check_liveness, check_safety};
use tm_modelcheck::lang::{LivenessProperty, SafetyProperty};

fn main() {
    // --- Safety -----------------------------------------------------------
    // Is DSTM opaque? One call: build DSTM for the most general program
    // with two threads and two variables (sufficient by the paper's
    // reduction theorem), build the deterministic opacity specification,
    // and check language inclusion.
    let verdict = check_safety(&DstmTm::new(2, 2), SafetyProperty::Opacity);
    println!(
        "DSTM opacity: {} ({} TM states, {} spec states, checked in {:.2?})",
        if verdict.holds() { "VERIFIED" } else { "VIOLATED" },
        verdict.tm_states,
        verdict.spec_states,
        verdict.check_time,
    );

    // A broken TM yields a counterexample word. The paper's "modified
    // TL2" splits commit-time validation into two non-atomic steps in the
    // unsafe order:
    let modified = Tl2Tm::with_validation(2, 2, ValidationStyle::RValidateThenChkLock);
    let verdict = check_safety(&modified, SafetyProperty::StrictSerializability);
    println!(
        "modified TL2 strict serializability: {} — counterexample: {}",
        if verdict.holds() { "VERIFIED" } else { "VIOLATED" },
        verdict
            .counterexample()
            .map(|w| w.to_string())
            .unwrap_or_default(),
    );

    // --- Liveness ---------------------------------------------------------
    // Liveness depends on the contention manager: DSTM with the aggressive
    // manager never self-aborts, so a transaction running alone commits.
    let dstm_aggr = WithContentionManager::new(DstmTm::new(2, 1), AggressiveCm);
    let of = check_liveness(&dstm_aggr, LivenessProperty::ObstructionFreedom);
    println!("DSTM+aggressive obstruction freedom: {}", yn(of.holds()));

    // ... but two aggressive writers can abort each other forever:
    let lf = check_liveness(&dstm_aggr, LivenessProperty::LivelockFreedom);
    println!(
        "DSTM+aggressive livelock freedom: {} — loop: {}",
        yn(lf.holds()),
        lf.counterexample()
            .map(|l| l.cycle_notation())
            .unwrap_or_default(),
    );

    // TL2 with the polite manager aborts at every conflict; a blocked
    // thread can then starve even in isolation:
    let tl2_pol = WithContentionManager::new(Tl2Tm::new(2, 1), PoliteCm);
    let of = check_liveness(&tl2_pol, LivenessProperty::ObstructionFreedom);
    println!(
        "TL2+polite obstruction freedom: {} — loop: {}",
        yn(of.holds()),
        of.counterexample()
            .map(|l| l.cycle_notation())
            .unwrap_or_default(),
    );
}

fn yn(b: bool) -> &'static str {
    if b {
        "VERIFIED"
    } else {
        "VIOLATED"
    }
}
