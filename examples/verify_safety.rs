//! Reproduces the paper's **Table 2**: language-inclusion safety checks of
//! sequential, 2PL, DSTM, TL2 and modified TL2 + polite, against both the
//! strict-serializability and opacity specifications, with state counts,
//! timings and counterexamples.
//!
//! ```bash
//! cargo run --release --example verify_safety
//! ```

use tm_modelcheck::algorithms::{
    DstmTm, PoliteCm, SequentialTm, Tl2Tm, TwoPhaseTm, ValidationStyle,
    WithContentionManager,
};
use tm_modelcheck::checker::{safety_table, SafetyChecker, SafetyVerdict};
use tm_modelcheck::lang::SafetyProperty;

fn check_all(property: SafetyProperty) -> Vec<SafetyVerdict> {
    let checker = SafetyChecker::new(property, 2, 2);
    let modified = WithContentionManager::new(
        Tl2Tm::with_validation(2, 2, ValidationStyle::RValidateThenChkLock),
        PoliteCm,
    );
    vec![
        checker.check(&SequentialTm::new(2, 2)),
        checker.check(&TwoPhaseTm::new(2, 2)),
        checker.check(&DstmTm::new(2, 2)),
        checker.check(&Tl2Tm::new(2, 2)),
        checker.check(&Tl2Tm::with_validation(
            2,
            2,
            ValidationStyle::ChkLockThenRValidate,
        )),
        checker.check(&modified),
    ]
}

fn main() {
    for property in SafetyProperty::all() {
        let verdicts = check_all(property);
        let title = format!(
            "Table 2 — L(A) ⊆ L(Σᵈ_{}), most general program (2 threads, 2 variables)",
            property.short_name()
        );
        println!("{}", safety_table(&title, &verdicts));
        println!(
            "spec Σᵈ_{}: {} states (paper: {})\n",
            property.short_name(),
            verdicts[0].spec_states,
            match property {
                SafetyProperty::StrictSerializability => "3520",
                SafetyProperty::Opacity => "2272",
            },
        );
    }
    println!(
        "Paper verdict pattern: seq/2PL/DSTM/TL2 → Y for both properties;\n\
         modified TL2 (split validation, unsafe order) + polite → N with\n\
         counterexample w1 = (w,2)1 (w,1)2 (r,2)2 (r,1)1 c2 c1."
    );
}
