//! Reproduces the paper's **Table 3**: liveness model checking of the TM
//! algorithms (with their contention managers) on the most general program
//! with two threads and one variable.
//!
//! ```bash
//! cargo run --release --example verify_liveness
//! ```

use tm_modelcheck::algorithms::{
    AggressiveCm, DstmTm, KarmaCm, PoliteCm, SequentialTm, Tl2Tm, TwoPhaseTm,
    WithContentionManager,
};
use tm_modelcheck::checker::{check_liveness, liveness_table, LivenessVerdict};
use tm_modelcheck::lang::LivenessProperty;

fn main() {
    let mut verdicts: Vec<LivenessVerdict> = Vec::new();
    let properties = [
        LivenessProperty::ObstructionFreedom,
        LivenessProperty::LivelockFreedom,
        LivenessProperty::WaitFreedom,
    ];

    for p in properties {
        verdicts.push(check_liveness(&SequentialTm::new(2, 1), p));
        verdicts.push(check_liveness(&TwoPhaseTm::new(2, 1), p));
        verdicts.push(check_liveness(
            &WithContentionManager::new(DstmTm::new(2, 1), AggressiveCm),
            p,
        ));
        verdicts.push(check_liveness(
            &WithContentionManager::new(Tl2Tm::new(2, 1), PoliteCm),
            p,
        ));
        // Extension beyond the paper: a finite Karma manager.
        verdicts.push(check_liveness(
            &WithContentionManager::new(DstmTm::new(2, 1), KarmaCm::new(2, 2)),
            p,
        ));
    }

    println!(
        "{}",
        liveness_table(
            "Table 3 — liveness model checking (2 threads, 1 variable)",
            &verdicts
        )
    );
    println!(
        "Paper verdict pattern (OF/LF): seq N/N, 2PL N/N, dstm+aggressive Y/N,\n\
         TL2+polite N/N; wait freedom fails everywhere (it implies livelock\n\
         freedom). The dstm+karma row is an extension beyond the paper."
    );
}
