//! Reproduces the paper's **Table 1**: example runs and the induced words
//! for each TM algorithm under explicit schedulers.
//!
//! ```bash
//! cargo run --release --example table1_runs
//! ```

use tm_modelcheck::algorithms::{
    execute_schedule, DstmTm, Run, SequentialTm, Tl2Tm, TwoPhaseTm,
};
use tm_modelcheck::lang::{Command, VarId};

fn read(v: usize) -> Command {
    Command::Read(VarId::new(v))
}
fn write(v: usize) -> Command {
    Command::Write(VarId::new(v))
}
const COMMIT: Command = Command::Commit;

fn show(tm_name: &str, schedule: &[usize], run: &Run) {
    let schedule_text: String = schedule.iter().map(|t| (t + 1).to_string()).collect();
    println!("{tm_name:6} {schedule_text:<10} run:  {run}");
    println!("{:6} {:<10} word: {}", "", "", run.word());
}

fn main() {
    println!("Table 1: example runs and words in the language of TM algorithms\n");

    // seq, scheduler 11122: t1 = r(v1) w(v2) c ; t2 = w(v1) c.
    let seq = SequentialTm::new(2, 2);
    let t1 = [read(0), write(1), COMMIT];
    let t2 = [write(0), COMMIT];
    let schedule = [0, 0, 0, 1, 1];
    show("seq", &schedule, &execute_schedule(&seq, &[&t1, &t2], &schedule).unwrap());

    // seq, scheduler 112122: t2's first write aborts while t1 is open.
    let t2 = [write(0), write(0), COMMIT];
    let schedule = [0, 0, 1, 0, 1, 1];
    show("seq", &schedule, &execute_schedule(&seq, &[&t1, &t2], &schedule).unwrap());

    // 2PL, scheduler 111112: locks shown as internal steps.
    let tpl = TwoPhaseTm::new(2, 2);
    let t1 = [read(0), write(1), COMMIT];
    let t2 = [write(1)];
    let schedule = [0, 0, 0, 0, 0, 1];
    show("2PL", &schedule, &execute_schedule(&tpl, &[&t1, &t2], &schedule).unwrap());

    // 2PL, scheduler 1211112: t2 is blocked by t1's read lock and aborts.
    let t2 = [write(0), write(1)];
    let schedule = [0, 1, 0, 0, 0, 0, 1];
    show("2PL", &schedule, &execute_schedule(&tpl, &[&t1, &t2], &schedule).unwrap());

    // DSTM, scheduler 12211112: t1 steals ownership back and commits; the
    // aborted t2 reports its abort at its next slot.
    let dstm = DstmTm::new(2, 2);
    let t1 = [read(0), write(1), COMMIT];
    let t2 = [write(0), COMMIT];
    let schedule = [0, 1, 1, 0, 0, 0, 0, 1];
    show("dstm", &schedule, &execute_schedule(&dstm, &[&t1, &t2], &schedule).unwrap());

    // DSTM, scheduler 12222111: t2 commits first, invalidating t1's read.
    let schedule = [0, 1, 1, 1, 1, 0, 0, 0];
    show("dstm", &schedule, &execute_schedule(&dstm, &[&t1, &t2], &schedule).unwrap());

    // TL2, scheduler 112112212: both transactions commit.
    let tl2 = Tl2Tm::new(2, 2);
    let t1 = [read(0), write(1), COMMIT];
    let t2 = [write(0), COMMIT];
    let schedule = [0, 0, 1, 0, 0, 1, 1, 0, 1];
    show("TL2", &schedule, &execute_schedule(&tl2, &[&t1, &t2], &schedule).unwrap());

    // TL2, scheduler 11212122: t2 steals t1's commit lock; t1 aborts.
    let t1 = [read(0), write(1), COMMIT, COMMIT];
    let t2 = [write(0), COMMIT];
    let schedule = [0, 0, 1, 0, 1, 0, 1, 1];
    show("TL2", &schedule, &execute_schedule(&tl2, &[&t1, &t2], &schedule).unwrap());

    // Sanity: every produced word is in the TM's language automaton.
    let explored = tm_modelcheck::algorithms::most_general_nfa(&tl2, 1_000_000);
    let run = execute_schedule(&tl2, &[&t1, &t2], &schedule).unwrap();
    assert!(explored.nfa.accepts(run.word().statements()));
    println!("\n(all words verified against the TM language automata)");
}
