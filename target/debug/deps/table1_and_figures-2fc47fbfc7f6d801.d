/root/repo/target/debug/deps/table1_and_figures-2fc47fbfc7f6d801.d: tests/table1_and_figures.rs Cargo.toml

/root/repo/target/debug/deps/libtable1_and_figures-2fc47fbfc7f6d801.rmeta: tests/table1_and_figures.rs Cargo.toml

tests/table1_and_figures.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
