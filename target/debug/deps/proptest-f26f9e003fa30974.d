/root/repo/target/debug/deps/proptest-f26f9e003fa30974.d: crates/shims/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-f26f9e003fa30974.rmeta: crates/shims/proptest/src/lib.rs

crates/shims/proptest/src/lib.rs:
