/root/repo/target/debug/deps/theorem3_equivalence-33b021c1a8aeec14.d: crates/bench/benches/theorem3_equivalence.rs

/root/repo/target/debug/deps/libtheorem3_equivalence-33b021c1a8aeec14.rmeta: crates/bench/benches/theorem3_equivalence.rs

crates/bench/benches/theorem3_equivalence.rs:
