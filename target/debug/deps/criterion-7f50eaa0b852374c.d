/root/repo/target/debug/deps/criterion-7f50eaa0b852374c.d: crates/shims/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-7f50eaa0b852374c.rlib: crates/shims/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-7f50eaa0b852374c.rmeta: crates/shims/criterion/src/lib.rs

crates/shims/criterion/src/lib.rs:
