/root/repo/target/debug/deps/criterion-67a376b4bd10ac53.d: crates/shims/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-67a376b4bd10ac53.rmeta: crates/shims/criterion/src/lib.rs

crates/shims/criterion/src/lib.rs:
