/root/repo/target/debug/deps/tables-6c1ea3e9fe3978bc.d: crates/bench/src/bin/tables.rs

/root/repo/target/debug/deps/tables-6c1ea3e9fe3978bc: crates/bench/src/bin/tables.rs

crates/bench/src/bin/tables.rs:
