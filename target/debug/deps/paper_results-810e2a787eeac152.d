/root/repo/target/debug/deps/paper_results-810e2a787eeac152.d: tests/paper_results.rs

/root/repo/target/debug/deps/libpaper_results-810e2a787eeac152.rmeta: tests/paper_results.rs

tests/paper_results.rs:
