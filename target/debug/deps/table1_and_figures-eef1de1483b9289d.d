/root/repo/target/debug/deps/table1_and_figures-eef1de1483b9289d.d: tests/table1_and_figures.rs

/root/repo/target/debug/deps/table1_and_figures-eef1de1483b9289d: tests/table1_and_figures.rs

tests/table1_and_figures.rs:
