/root/repo/target/debug/deps/automata_laws-770b1dec90c0a6ac.d: tests/automata_laws.rs

/root/repo/target/debug/deps/libautomata_laws-770b1dec90c0a6ac.rmeta: tests/automata_laws.rs

tests/automata_laws.rs:
