/root/repo/target/debug/deps/tm_modelcheck-dee9b32377a7bd31.d: src/lib.rs

/root/repo/target/debug/deps/libtm_modelcheck-dee9b32377a7bd31.rlib: src/lib.rs

/root/repo/target/debug/deps/libtm_modelcheck-dee9b32377a7bd31.rmeta: src/lib.rs

src/lib.rs:
