/root/repo/target/debug/deps/proptest-89f0464b2d3fcb84.d: crates/shims/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-89f0464b2d3fcb84.rlib: crates/shims/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-89f0464b2d3fcb84.rmeta: crates/shims/proptest/src/lib.rs

crates/shims/proptest/src/lib.rs:
