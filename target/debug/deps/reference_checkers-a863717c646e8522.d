/root/repo/target/debug/deps/reference_checkers-a863717c646e8522.d: crates/bench/benches/reference_checkers.rs

/root/repo/target/debug/deps/libreference_checkers-a863717c646e8522.rmeta: crates/bench/benches/reference_checkers.rs

crates/bench/benches/reference_checkers.rs:
