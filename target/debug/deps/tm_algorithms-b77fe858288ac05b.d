/root/repo/target/debug/deps/tm_algorithms-b77fe858288ac05b.d: crates/tm-algorithms/src/lib.rs crates/tm-algorithms/src/algorithm.rs crates/tm-algorithms/src/contention.rs crates/tm-algorithms/src/dstm.rs crates/tm-algorithms/src/explore.rs crates/tm-algorithms/src/runner.rs crates/tm-algorithms/src/sequential.rs crates/tm-algorithms/src/tl2.rs crates/tm-algorithms/src/two_phase.rs Cargo.toml

/root/repo/target/debug/deps/libtm_algorithms-b77fe858288ac05b.rmeta: crates/tm-algorithms/src/lib.rs crates/tm-algorithms/src/algorithm.rs crates/tm-algorithms/src/contention.rs crates/tm-algorithms/src/dstm.rs crates/tm-algorithms/src/explore.rs crates/tm-algorithms/src/runner.rs crates/tm-algorithms/src/sequential.rs crates/tm-algorithms/src/tl2.rs crates/tm-algorithms/src/two_phase.rs Cargo.toml

crates/tm-algorithms/src/lib.rs:
crates/tm-algorithms/src/algorithm.rs:
crates/tm-algorithms/src/contention.rs:
crates/tm-algorithms/src/dstm.rs:
crates/tm-algorithms/src/explore.rs:
crates/tm-algorithms/src/runner.rs:
crates/tm-algorithms/src/sequential.rs:
crates/tm-algorithms/src/tl2.rs:
crates/tm-algorithms/src/two_phase.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
