/root/repo/target/debug/deps/table3_liveness-ddeb6e642cae0212.d: crates/bench/benches/table3_liveness.rs

/root/repo/target/debug/deps/libtable3_liveness-ddeb6e642cae0212.rmeta: crates/bench/benches/table3_liveness.rs

crates/bench/benches/table3_liveness.rs:
