/root/repo/target/debug/deps/tm_modelcheck-c3b68648459ca2f1.d: src/lib.rs

/root/repo/target/debug/deps/libtm_modelcheck-c3b68648459ca2f1.rmeta: src/lib.rs

src/lib.rs:
