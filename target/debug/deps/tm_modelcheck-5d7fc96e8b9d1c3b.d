/root/repo/target/debug/deps/tm_modelcheck-5d7fc96e8b9d1c3b.d: src/lib.rs

/root/repo/target/debug/deps/tm_modelcheck-5d7fc96e8b9d1c3b: src/lib.rs

src/lib.rs:
