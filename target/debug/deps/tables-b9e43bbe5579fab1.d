/root/repo/target/debug/deps/tables-b9e43bbe5579fab1.d: crates/bench/src/bin/tables.rs

/root/repo/target/debug/deps/libtables-b9e43bbe5579fab1.rmeta: crates/bench/src/bin/tables.rs

crates/bench/src/bin/tables.rs:
