/root/repo/target/debug/deps/tm_lang-36b19678b5f74e60.d: crates/tm-lang/src/lib.rs crates/tm-lang/src/conflict.rs crates/tm-lang/src/enumerate.rs crates/tm-lang/src/ids.rs crates/tm-lang/src/liveness.rs crates/tm-lang/src/safety.rs crates/tm-lang/src/statement.rs crates/tm-lang/src/transaction.rs crates/tm-lang/src/word.rs

/root/repo/target/debug/deps/libtm_lang-36b19678b5f74e60.rmeta: crates/tm-lang/src/lib.rs crates/tm-lang/src/conflict.rs crates/tm-lang/src/enumerate.rs crates/tm-lang/src/ids.rs crates/tm-lang/src/liveness.rs crates/tm-lang/src/safety.rs crates/tm-lang/src/statement.rs crates/tm-lang/src/transaction.rs crates/tm-lang/src/word.rs

crates/tm-lang/src/lib.rs:
crates/tm-lang/src/conflict.rs:
crates/tm-lang/src/enumerate.rs:
crates/tm-lang/src/ids.rs:
crates/tm-lang/src/liveness.rs:
crates/tm-lang/src/safety.rs:
crates/tm-lang/src/statement.rs:
crates/tm-lang/src/transaction.rs:
crates/tm-lang/src/word.rs:
