/root/repo/target/debug/deps/tm_lang-9b887b5c72f141f6.d: crates/tm-lang/src/lib.rs crates/tm-lang/src/conflict.rs crates/tm-lang/src/enumerate.rs crates/tm-lang/src/ids.rs crates/tm-lang/src/liveness.rs crates/tm-lang/src/safety.rs crates/tm-lang/src/statement.rs crates/tm-lang/src/transaction.rs crates/tm-lang/src/word.rs Cargo.toml

/root/repo/target/debug/deps/libtm_lang-9b887b5c72f141f6.rmeta: crates/tm-lang/src/lib.rs crates/tm-lang/src/conflict.rs crates/tm-lang/src/enumerate.rs crates/tm-lang/src/ids.rs crates/tm-lang/src/liveness.rs crates/tm-lang/src/safety.rs crates/tm-lang/src/statement.rs crates/tm-lang/src/transaction.rs crates/tm-lang/src/word.rs Cargo.toml

crates/tm-lang/src/lib.rs:
crates/tm-lang/src/conflict.rs:
crates/tm-lang/src/enumerate.rs:
crates/tm-lang/src/ids.rs:
crates/tm-lang/src/liveness.rs:
crates/tm-lang/src/safety.rs:
crates/tm-lang/src/statement.rs:
crates/tm-lang/src/transaction.rs:
crates/tm-lang/src/word.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
