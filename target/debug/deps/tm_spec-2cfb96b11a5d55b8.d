/root/repo/target/debug/deps/tm_spec-2cfb96b11a5d55b8.d: crates/tm-spec/src/lib.rs crates/tm-spec/src/canonical.rs crates/tm-spec/src/det.rs crates/tm-spec/src/nondet.rs crates/tm-spec/src/state.rs crates/tm-spec/src/validate.rs

/root/repo/target/debug/deps/tm_spec-2cfb96b11a5d55b8: crates/tm-spec/src/lib.rs crates/tm-spec/src/canonical.rs crates/tm-spec/src/det.rs crates/tm-spec/src/nondet.rs crates/tm-spec/src/state.rs crates/tm-spec/src/validate.rs

crates/tm-spec/src/lib.rs:
crates/tm-spec/src/canonical.rs:
crates/tm-spec/src/det.rs:
crates/tm-spec/src/nondet.rs:
crates/tm-spec/src/state.rs:
crates/tm-spec/src/validate.rs:
