/root/repo/target/debug/deps/tm_spec-fae2e972c5bebe22.d: crates/tm-spec/src/lib.rs crates/tm-spec/src/canonical.rs crates/tm-spec/src/det.rs crates/tm-spec/src/nondet.rs crates/tm-spec/src/state.rs crates/tm-spec/src/validate.rs Cargo.toml

/root/repo/target/debug/deps/libtm_spec-fae2e972c5bebe22.rmeta: crates/tm-spec/src/lib.rs crates/tm-spec/src/canonical.rs crates/tm-spec/src/det.rs crates/tm-spec/src/nondet.rs crates/tm-spec/src/state.rs crates/tm-spec/src/validate.rs Cargo.toml

crates/tm-spec/src/lib.rs:
crates/tm-spec/src/canonical.rs:
crates/tm-spec/src/det.rs:
crates/tm-spec/src/nondet.rs:
crates/tm-spec/src/state.rs:
crates/tm-spec/src/validate.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
