/root/repo/target/debug/deps/property_based-325d5119288f16e1.d: tests/property_based.rs Cargo.toml

/root/repo/target/debug/deps/libproperty_based-325d5119288f16e1.rmeta: tests/property_based.rs Cargo.toml

tests/property_based.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
