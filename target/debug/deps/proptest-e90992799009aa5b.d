/root/repo/target/debug/deps/proptest-e90992799009aa5b.d: crates/shims/proptest/src/lib.rs

/root/repo/target/debug/deps/proptest-e90992799009aa5b: crates/shims/proptest/src/lib.rs

crates/shims/proptest/src/lib.rs:
