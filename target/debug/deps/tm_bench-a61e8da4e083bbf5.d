/root/repo/target/debug/deps/tm_bench-a61e8da4e083bbf5.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libtm_bench-a61e8da4e083bbf5.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libtm_bench-a61e8da4e083bbf5.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
