/root/repo/target/debug/deps/property_based-54d66dbd1550c489.d: tests/property_based.rs

/root/repo/target/debug/deps/libproperty_based-54d66dbd1550c489.rmeta: tests/property_based.rs

tests/property_based.rs:
