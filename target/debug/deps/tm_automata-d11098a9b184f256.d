/root/repo/target/debug/deps/tm_automata-d11098a9b184f256.d: crates/tm-automata/src/lib.rs crates/tm-automata/src/alphabet.rs crates/tm-automata/src/antichain.rs crates/tm-automata/src/bitset.rs crates/tm-automata/src/compiled.rs crates/tm-automata/src/dfa.rs crates/tm-automata/src/explore.rs crates/tm-automata/src/fxhash.rs crates/tm-automata/src/graph.rs crates/tm-automata/src/inclusion.rs crates/tm-automata/src/nfa.rs

/root/repo/target/debug/deps/libtm_automata-d11098a9b184f256.rmeta: crates/tm-automata/src/lib.rs crates/tm-automata/src/alphabet.rs crates/tm-automata/src/antichain.rs crates/tm-automata/src/bitset.rs crates/tm-automata/src/compiled.rs crates/tm-automata/src/dfa.rs crates/tm-automata/src/explore.rs crates/tm-automata/src/fxhash.rs crates/tm-automata/src/graph.rs crates/tm-automata/src/inclusion.rs crates/tm-automata/src/nfa.rs

crates/tm-automata/src/lib.rs:
crates/tm-automata/src/alphabet.rs:
crates/tm-automata/src/antichain.rs:
crates/tm-automata/src/bitset.rs:
crates/tm-automata/src/compiled.rs:
crates/tm-automata/src/dfa.rs:
crates/tm-automata/src/explore.rs:
crates/tm-automata/src/fxhash.rs:
crates/tm-automata/src/graph.rs:
crates/tm-automata/src/inclusion.rs:
crates/tm-automata/src/nfa.rs:
