/root/repo/target/debug/deps/tm_modelcheck-d4631212637f9f63.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libtm_modelcheck-d4631212637f9f63.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
