/root/repo/target/debug/deps/scaling-e96614993f5e29af.d: crates/bench/benches/scaling.rs

/root/repo/target/debug/deps/libscaling-e96614993f5e29af.rmeta: crates/bench/benches/scaling.rs

crates/bench/benches/scaling.rs:
