/root/repo/target/debug/deps/tm_checker-b5043f2414069e61.d: crates/core/src/lib.rs crates/core/src/liveness.rs crates/core/src/reduction.rs crates/core/src/report.rs crates/core/src/safety.rs crates/core/src/structural.rs

/root/repo/target/debug/deps/libtm_checker-b5043f2414069e61.rlib: crates/core/src/lib.rs crates/core/src/liveness.rs crates/core/src/reduction.rs crates/core/src/report.rs crates/core/src/safety.rs crates/core/src/structural.rs

/root/repo/target/debug/deps/libtm_checker-b5043f2414069e61.rmeta: crates/core/src/lib.rs crates/core/src/liveness.rs crates/core/src/reduction.rs crates/core/src/report.rs crates/core/src/safety.rs crates/core/src/structural.rs

crates/core/src/lib.rs:
crates/core/src/liveness.rs:
crates/core/src/reduction.rs:
crates/core/src/report.rs:
crates/core/src/safety.rs:
crates/core/src/structural.rs:
