/root/repo/target/debug/deps/tm_checker-1819699bda963b56.d: crates/core/src/lib.rs crates/core/src/liveness.rs crates/core/src/reduction.rs crates/core/src/report.rs crates/core/src/safety.rs crates/core/src/structural.rs Cargo.toml

/root/repo/target/debug/deps/libtm_checker-1819699bda963b56.rmeta: crates/core/src/lib.rs crates/core/src/liveness.rs crates/core/src/reduction.rs crates/core/src/report.rs crates/core/src/safety.rs crates/core/src/structural.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/liveness.rs:
crates/core/src/reduction.rs:
crates/core/src/report.rs:
crates/core/src/safety.rs:
crates/core/src/structural.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
