/root/repo/target/debug/deps/reduction_and_structure-97e44d484f7e7adb.d: tests/reduction_and_structure.rs

/root/repo/target/debug/deps/libreduction_and_structure-97e44d484f7e7adb.rmeta: tests/reduction_and_structure.rs

tests/reduction_and_structure.rs:
