/root/repo/target/debug/deps/paper_results-2e93eff63d14eddd.d: tests/paper_results.rs

/root/repo/target/debug/deps/paper_results-2e93eff63d14eddd: tests/paper_results.rs

tests/paper_results.rs:
