/root/repo/target/debug/deps/tm_bench-73a8f058f0da0c77.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/tm_bench-73a8f058f0da0c77: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
