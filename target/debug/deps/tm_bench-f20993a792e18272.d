/root/repo/target/debug/deps/tm_bench-f20993a792e18272.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libtm_bench-f20993a792e18272.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
