/root/repo/target/debug/deps/reduction_and_structure-12365c7e66c1625c.d: tests/reduction_and_structure.rs

/root/repo/target/debug/deps/reduction_and_structure-12365c7e66c1625c: tests/reduction_and_structure.rs

tests/reduction_and_structure.rs:
