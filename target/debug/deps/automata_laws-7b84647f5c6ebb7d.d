/root/repo/target/debug/deps/automata_laws-7b84647f5c6ebb7d.d: tests/automata_laws.rs

/root/repo/target/debug/deps/automata_laws-7b84647f5c6ebb7d: tests/automata_laws.rs

tests/automata_laws.rs:
