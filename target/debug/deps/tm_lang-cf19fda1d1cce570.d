/root/repo/target/debug/deps/tm_lang-cf19fda1d1cce570.d: crates/tm-lang/src/lib.rs crates/tm-lang/src/conflict.rs crates/tm-lang/src/enumerate.rs crates/tm-lang/src/ids.rs crates/tm-lang/src/liveness.rs crates/tm-lang/src/safety.rs crates/tm-lang/src/statement.rs crates/tm-lang/src/transaction.rs crates/tm-lang/src/word.rs

/root/repo/target/debug/deps/tm_lang-cf19fda1d1cce570: crates/tm-lang/src/lib.rs crates/tm-lang/src/conflict.rs crates/tm-lang/src/enumerate.rs crates/tm-lang/src/ids.rs crates/tm-lang/src/liveness.rs crates/tm-lang/src/safety.rs crates/tm-lang/src/statement.rs crates/tm-lang/src/transaction.rs crates/tm-lang/src/word.rs

crates/tm-lang/src/lib.rs:
crates/tm-lang/src/conflict.rs:
crates/tm-lang/src/enumerate.rs:
crates/tm-lang/src/ids.rs:
crates/tm-lang/src/liveness.rs:
crates/tm-lang/src/safety.rs:
crates/tm-lang/src/statement.rs:
crates/tm-lang/src/transaction.rs:
crates/tm-lang/src/word.rs:
