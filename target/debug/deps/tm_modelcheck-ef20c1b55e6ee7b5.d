/root/repo/target/debug/deps/tm_modelcheck-ef20c1b55e6ee7b5.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libtm_modelcheck-ef20c1b55e6ee7b5.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
