/root/repo/target/debug/deps/tm_algorithms-fef269025a3586a2.d: crates/tm-algorithms/src/lib.rs crates/tm-algorithms/src/algorithm.rs crates/tm-algorithms/src/contention.rs crates/tm-algorithms/src/dstm.rs crates/tm-algorithms/src/explore.rs crates/tm-algorithms/src/runner.rs crates/tm-algorithms/src/sequential.rs crates/tm-algorithms/src/tl2.rs crates/tm-algorithms/src/two_phase.rs

/root/repo/target/debug/deps/libtm_algorithms-fef269025a3586a2.rmeta: crates/tm-algorithms/src/lib.rs crates/tm-algorithms/src/algorithm.rs crates/tm-algorithms/src/contention.rs crates/tm-algorithms/src/dstm.rs crates/tm-algorithms/src/explore.rs crates/tm-algorithms/src/runner.rs crates/tm-algorithms/src/sequential.rs crates/tm-algorithms/src/tl2.rs crates/tm-algorithms/src/two_phase.rs

crates/tm-algorithms/src/lib.rs:
crates/tm-algorithms/src/algorithm.rs:
crates/tm-algorithms/src/contention.rs:
crates/tm-algorithms/src/dstm.rs:
crates/tm-algorithms/src/explore.rs:
crates/tm-algorithms/src/runner.rs:
crates/tm-algorithms/src/sequential.rs:
crates/tm-algorithms/src/tl2.rs:
crates/tm-algorithms/src/two_phase.rs:
