/root/repo/target/debug/deps/spec_correctness-c06459e0b0dce1c6.d: tests/spec_correctness.rs

/root/repo/target/debug/deps/libspec_correctness-c06459e0b0dce1c6.rmeta: tests/spec_correctness.rs

tests/spec_correctness.rs:
