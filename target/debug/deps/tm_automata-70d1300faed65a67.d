/root/repo/target/debug/deps/tm_automata-70d1300faed65a67.d: crates/tm-automata/src/lib.rs crates/tm-automata/src/alphabet.rs crates/tm-automata/src/antichain.rs crates/tm-automata/src/bitset.rs crates/tm-automata/src/compiled.rs crates/tm-automata/src/dfa.rs crates/tm-automata/src/explore.rs crates/tm-automata/src/fxhash.rs crates/tm-automata/src/graph.rs crates/tm-automata/src/inclusion.rs crates/tm-automata/src/nfa.rs Cargo.toml

/root/repo/target/debug/deps/libtm_automata-70d1300faed65a67.rmeta: crates/tm-automata/src/lib.rs crates/tm-automata/src/alphabet.rs crates/tm-automata/src/antichain.rs crates/tm-automata/src/bitset.rs crates/tm-automata/src/compiled.rs crates/tm-automata/src/dfa.rs crates/tm-automata/src/explore.rs crates/tm-automata/src/fxhash.rs crates/tm-automata/src/graph.rs crates/tm-automata/src/inclusion.rs crates/tm-automata/src/nfa.rs Cargo.toml

crates/tm-automata/src/lib.rs:
crates/tm-automata/src/alphabet.rs:
crates/tm-automata/src/antichain.rs:
crates/tm-automata/src/bitset.rs:
crates/tm-automata/src/compiled.rs:
crates/tm-automata/src/dfa.rs:
crates/tm-automata/src/explore.rs:
crates/tm-automata/src/fxhash.rs:
crates/tm-automata/src/graph.rs:
crates/tm-automata/src/inclusion.rs:
crates/tm-automata/src/nfa.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
