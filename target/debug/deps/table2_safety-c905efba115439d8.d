/root/repo/target/debug/deps/table2_safety-c905efba115439d8.d: crates/bench/benches/table2_safety.rs

/root/repo/target/debug/deps/libtable2_safety-c905efba115439d8.rmeta: crates/bench/benches/table2_safety.rs

crates/bench/benches/table2_safety.rs:
