/root/repo/target/debug/deps/property_based-77dcfa2b9074af00.d: tests/property_based.rs

/root/repo/target/debug/deps/property_based-77dcfa2b9074af00: tests/property_based.rs

tests/property_based.rs:
