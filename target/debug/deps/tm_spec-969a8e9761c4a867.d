/root/repo/target/debug/deps/tm_spec-969a8e9761c4a867.d: crates/tm-spec/src/lib.rs crates/tm-spec/src/canonical.rs crates/tm-spec/src/det.rs crates/tm-spec/src/nondet.rs crates/tm-spec/src/state.rs crates/tm-spec/src/validate.rs

/root/repo/target/debug/deps/libtm_spec-969a8e9761c4a867.rlib: crates/tm-spec/src/lib.rs crates/tm-spec/src/canonical.rs crates/tm-spec/src/det.rs crates/tm-spec/src/nondet.rs crates/tm-spec/src/state.rs crates/tm-spec/src/validate.rs

/root/repo/target/debug/deps/libtm_spec-969a8e9761c4a867.rmeta: crates/tm-spec/src/lib.rs crates/tm-spec/src/canonical.rs crates/tm-spec/src/det.rs crates/tm-spec/src/nondet.rs crates/tm-spec/src/state.rs crates/tm-spec/src/validate.rs

crates/tm-spec/src/lib.rs:
crates/tm-spec/src/canonical.rs:
crates/tm-spec/src/det.rs:
crates/tm-spec/src/nondet.rs:
crates/tm-spec/src/state.rs:
crates/tm-spec/src/validate.rs:
