/root/repo/target/debug/deps/tm_bench-f65546d18b97465e.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libtm_bench-f65546d18b97465e.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
