/root/repo/target/debug/deps/tm_modelcheck-e8a2dad2bd016872.d: src/lib.rs

/root/repo/target/debug/deps/libtm_modelcheck-e8a2dad2bd016872.rmeta: src/lib.rs

src/lib.rs:
