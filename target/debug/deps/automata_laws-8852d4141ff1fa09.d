/root/repo/target/debug/deps/automata_laws-8852d4141ff1fa09.d: tests/automata_laws.rs Cargo.toml

/root/repo/target/debug/deps/libautomata_laws-8852d4141ff1fa09.rmeta: tests/automata_laws.rs Cargo.toml

tests/automata_laws.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
