/root/repo/target/debug/deps/table1_and_figures-a2fd0ceac2852175.d: tests/table1_and_figures.rs

/root/repo/target/debug/deps/libtable1_and_figures-a2fd0ceac2852175.rmeta: tests/table1_and_figures.rs

tests/table1_and_figures.rs:
