/root/repo/target/debug/deps/tables-0f4b559ca2d59973.d: crates/bench/src/bin/tables.rs

/root/repo/target/debug/deps/libtables-0f4b559ca2d59973.rmeta: crates/bench/src/bin/tables.rs

crates/bench/src/bin/tables.rs:
