/root/repo/target/debug/deps/tm_checker-192d521e7dab1265.d: crates/core/src/lib.rs crates/core/src/liveness.rs crates/core/src/reduction.rs crates/core/src/report.rs crates/core/src/safety.rs crates/core/src/structural.rs

/root/repo/target/debug/deps/libtm_checker-192d521e7dab1265.rmeta: crates/core/src/lib.rs crates/core/src/liveness.rs crates/core/src/reduction.rs crates/core/src/report.rs crates/core/src/safety.rs crates/core/src/structural.rs

crates/core/src/lib.rs:
crates/core/src/liveness.rs:
crates/core/src/reduction.rs:
crates/core/src/report.rs:
crates/core/src/safety.rs:
crates/core/src/structural.rs:
