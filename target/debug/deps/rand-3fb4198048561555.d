/root/repo/target/debug/deps/rand-3fb4198048561555.d: crates/shims/rand/src/lib.rs

/root/repo/target/debug/deps/librand-3fb4198048561555.rmeta: crates/shims/rand/src/lib.rs

crates/shims/rand/src/lib.rs:
