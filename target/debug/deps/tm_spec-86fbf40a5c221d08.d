/root/repo/target/debug/deps/tm_spec-86fbf40a5c221d08.d: crates/tm-spec/src/lib.rs crates/tm-spec/src/canonical.rs crates/tm-spec/src/det.rs crates/tm-spec/src/nondet.rs crates/tm-spec/src/state.rs crates/tm-spec/src/validate.rs

/root/repo/target/debug/deps/libtm_spec-86fbf40a5c221d08.rmeta: crates/tm-spec/src/lib.rs crates/tm-spec/src/canonical.rs crates/tm-spec/src/det.rs crates/tm-spec/src/nondet.rs crates/tm-spec/src/state.rs crates/tm-spec/src/validate.rs

crates/tm-spec/src/lib.rs:
crates/tm-spec/src/canonical.rs:
crates/tm-spec/src/det.rs:
crates/tm-spec/src/nondet.rs:
crates/tm-spec/src/state.rs:
crates/tm-spec/src/validate.rs:
