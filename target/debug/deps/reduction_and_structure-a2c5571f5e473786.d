/root/repo/target/debug/deps/reduction_and_structure-a2c5571f5e473786.d: tests/reduction_and_structure.rs Cargo.toml

/root/repo/target/debug/deps/libreduction_and_structure-a2c5571f5e473786.rmeta: tests/reduction_and_structure.rs Cargo.toml

tests/reduction_and_structure.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
