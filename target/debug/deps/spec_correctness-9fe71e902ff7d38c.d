/root/repo/target/debug/deps/spec_correctness-9fe71e902ff7d38c.d: tests/spec_correctness.rs

/root/repo/target/debug/deps/spec_correctness-9fe71e902ff7d38c: tests/spec_correctness.rs

tests/spec_correctness.rs:
