/root/repo/target/debug/deps/proptest-59592a3ad1b6688e.d: crates/shims/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-59592a3ad1b6688e.rmeta: crates/shims/proptest/src/lib.rs

crates/shims/proptest/src/lib.rs:
