/root/repo/target/debug/deps/criterion-0b8fe05086e0af47.d: crates/shims/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-0b8fe05086e0af47.rmeta: crates/shims/criterion/src/lib.rs

crates/shims/criterion/src/lib.rs:
