/root/repo/target/debug/deps/spec_correctness-c9d958e6274eb2f8.d: tests/spec_correctness.rs Cargo.toml

/root/repo/target/debug/deps/libspec_correctness-c9d958e6274eb2f8.rmeta: tests/spec_correctness.rs Cargo.toml

tests/spec_correctness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
