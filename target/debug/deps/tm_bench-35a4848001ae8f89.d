/root/repo/target/debug/deps/tm_bench-35a4848001ae8f89.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libtm_bench-35a4848001ae8f89.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
