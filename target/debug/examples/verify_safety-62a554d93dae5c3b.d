/root/repo/target/debug/examples/verify_safety-62a554d93dae5c3b.d: examples/verify_safety.rs Cargo.toml

/root/repo/target/debug/examples/libverify_safety-62a554d93dae5c3b.rmeta: examples/verify_safety.rs Cargo.toml

examples/verify_safety.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
