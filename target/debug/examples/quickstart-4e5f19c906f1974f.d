/root/repo/target/debug/examples/quickstart-4e5f19c906f1974f.d: examples/quickstart.rs

/root/repo/target/debug/examples/libquickstart-4e5f19c906f1974f.rmeta: examples/quickstart.rs

examples/quickstart.rs:
