/root/repo/target/debug/examples/custom_tm-275a844dda3dad77.d: examples/custom_tm.rs

/root/repo/target/debug/examples/custom_tm-275a844dda3dad77: examples/custom_tm.rs

examples/custom_tm.rs:
