/root/repo/target/debug/examples/table1_runs-66f87d5c2b23f94b.d: examples/table1_runs.rs

/root/repo/target/debug/examples/libtable1_runs-66f87d5c2b23f94b.rmeta: examples/table1_runs.rs

examples/table1_runs.rs:
