/root/repo/target/debug/examples/verify_safety-5e038d3b3ba9acd8.d: examples/verify_safety.rs

/root/repo/target/debug/examples/verify_safety-5e038d3b3ba9acd8: examples/verify_safety.rs

examples/verify_safety.rs:
