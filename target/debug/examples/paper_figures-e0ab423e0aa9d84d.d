/root/repo/target/debug/examples/paper_figures-e0ab423e0aa9d84d.d: examples/paper_figures.rs Cargo.toml

/root/repo/target/debug/examples/libpaper_figures-e0ab423e0aa9d84d.rmeta: examples/paper_figures.rs Cargo.toml

examples/paper_figures.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
