/root/repo/target/debug/examples/quickstart-5f1a8b7b13bddf9f.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-5f1a8b7b13bddf9f.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
