/root/repo/target/debug/examples/timing_check-637b919885fe0f99.d: crates/bench/examples/timing_check.rs

/root/repo/target/debug/examples/libtiming_check-637b919885fe0f99.rmeta: crates/bench/examples/timing_check.rs

crates/bench/examples/timing_check.rs:
