/root/repo/target/debug/examples/custom_tm-1101bcc0d7181c6c.d: examples/custom_tm.rs Cargo.toml

/root/repo/target/debug/examples/libcustom_tm-1101bcc0d7181c6c.rmeta: examples/custom_tm.rs Cargo.toml

examples/custom_tm.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
