/root/repo/target/debug/examples/table1_runs-93b842d8379c4bba.d: examples/table1_runs.rs

/root/repo/target/debug/examples/table1_runs-93b842d8379c4bba: examples/table1_runs.rs

examples/table1_runs.rs:
