/root/repo/target/debug/examples/verify_safety-5be6a1c6b7a3393f.d: examples/verify_safety.rs

/root/repo/target/debug/examples/libverify_safety-5be6a1c6b7a3393f.rmeta: examples/verify_safety.rs

examples/verify_safety.rs:
