/root/repo/target/debug/examples/quickstart-1d2b0871662956ba.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-1d2b0871662956ba: examples/quickstart.rs

examples/quickstart.rs:
