/root/repo/target/debug/examples/table1_runs-182c345a34216403.d: examples/table1_runs.rs Cargo.toml

/root/repo/target/debug/examples/libtable1_runs-182c345a34216403.rmeta: examples/table1_runs.rs Cargo.toml

examples/table1_runs.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
