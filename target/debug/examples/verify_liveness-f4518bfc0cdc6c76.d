/root/repo/target/debug/examples/verify_liveness-f4518bfc0cdc6c76.d: examples/verify_liveness.rs Cargo.toml

/root/repo/target/debug/examples/libverify_liveness-f4518bfc0cdc6c76.rmeta: examples/verify_liveness.rs Cargo.toml

examples/verify_liveness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
