/root/repo/target/debug/examples/timing_check-be3211de01a3d22b.d: crates/bench/examples/timing_check.rs

/root/repo/target/debug/examples/timing_check-be3211de01a3d22b: crates/bench/examples/timing_check.rs

crates/bench/examples/timing_check.rs:
