/root/repo/target/debug/examples/custom_tm-c54c785d8398dd3f.d: examples/custom_tm.rs

/root/repo/target/debug/examples/libcustom_tm-c54c785d8398dd3f.rmeta: examples/custom_tm.rs

examples/custom_tm.rs:
