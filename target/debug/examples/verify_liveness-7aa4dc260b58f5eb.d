/root/repo/target/debug/examples/verify_liveness-7aa4dc260b58f5eb.d: examples/verify_liveness.rs

/root/repo/target/debug/examples/verify_liveness-7aa4dc260b58f5eb: examples/verify_liveness.rs

examples/verify_liveness.rs:
