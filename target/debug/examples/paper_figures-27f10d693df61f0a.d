/root/repo/target/debug/examples/paper_figures-27f10d693df61f0a.d: examples/paper_figures.rs

/root/repo/target/debug/examples/paper_figures-27f10d693df61f0a: examples/paper_figures.rs

examples/paper_figures.rs:
