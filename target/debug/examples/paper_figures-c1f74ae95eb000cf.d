/root/repo/target/debug/examples/paper_figures-c1f74ae95eb000cf.d: examples/paper_figures.rs

/root/repo/target/debug/examples/libpaper_figures-c1f74ae95eb000cf.rmeta: examples/paper_figures.rs

examples/paper_figures.rs:
