/root/repo/target/debug/examples/verify_liveness-680ecf10846d7b57.d: examples/verify_liveness.rs

/root/repo/target/debug/examples/libverify_liveness-680ecf10846d7b57.rmeta: examples/verify_liveness.rs

examples/verify_liveness.rs:
