/root/repo/target/release/deps/tables-e4896e852a403a11.d: crates/bench/src/bin/tables.rs

/root/repo/target/release/deps/tables-e4896e852a403a11: crates/bench/src/bin/tables.rs

crates/bench/src/bin/tables.rs:
