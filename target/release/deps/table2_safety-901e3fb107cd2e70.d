/root/repo/target/release/deps/table2_safety-901e3fb107cd2e70.d: crates/bench/benches/table2_safety.rs

/root/repo/target/release/deps/table2_safety-901e3fb107cd2e70: crates/bench/benches/table2_safety.rs

crates/bench/benches/table2_safety.rs:
