/root/repo/target/release/deps/theorem3_equivalence-831c25b3ec7e3419.d: crates/bench/benches/theorem3_equivalence.rs

/root/repo/target/release/deps/theorem3_equivalence-831c25b3ec7e3419: crates/bench/benches/theorem3_equivalence.rs

crates/bench/benches/theorem3_equivalence.rs:
