/root/repo/target/release/deps/tm_lang-3865ec233a977f6b.d: crates/tm-lang/src/lib.rs crates/tm-lang/src/conflict.rs crates/tm-lang/src/enumerate.rs crates/tm-lang/src/ids.rs crates/tm-lang/src/liveness.rs crates/tm-lang/src/safety.rs crates/tm-lang/src/statement.rs crates/tm-lang/src/transaction.rs crates/tm-lang/src/word.rs

/root/repo/target/release/deps/libtm_lang-3865ec233a977f6b.rlib: crates/tm-lang/src/lib.rs crates/tm-lang/src/conflict.rs crates/tm-lang/src/enumerate.rs crates/tm-lang/src/ids.rs crates/tm-lang/src/liveness.rs crates/tm-lang/src/safety.rs crates/tm-lang/src/statement.rs crates/tm-lang/src/transaction.rs crates/tm-lang/src/word.rs

/root/repo/target/release/deps/libtm_lang-3865ec233a977f6b.rmeta: crates/tm-lang/src/lib.rs crates/tm-lang/src/conflict.rs crates/tm-lang/src/enumerate.rs crates/tm-lang/src/ids.rs crates/tm-lang/src/liveness.rs crates/tm-lang/src/safety.rs crates/tm-lang/src/statement.rs crates/tm-lang/src/transaction.rs crates/tm-lang/src/word.rs

crates/tm-lang/src/lib.rs:
crates/tm-lang/src/conflict.rs:
crates/tm-lang/src/enumerate.rs:
crates/tm-lang/src/ids.rs:
crates/tm-lang/src/liveness.rs:
crates/tm-lang/src/safety.rs:
crates/tm-lang/src/statement.rs:
crates/tm-lang/src/transaction.rs:
crates/tm-lang/src/word.rs:
