/root/repo/target/release/deps/tm_automata-89ef90927c1f8b11.d: crates/tm-automata/src/lib.rs crates/tm-automata/src/alphabet.rs crates/tm-automata/src/antichain.rs crates/tm-automata/src/bitset.rs crates/tm-automata/src/compiled.rs crates/tm-automata/src/dfa.rs crates/tm-automata/src/explore.rs crates/tm-automata/src/fxhash.rs crates/tm-automata/src/graph.rs crates/tm-automata/src/inclusion.rs crates/tm-automata/src/nfa.rs

/root/repo/target/release/deps/libtm_automata-89ef90927c1f8b11.rlib: crates/tm-automata/src/lib.rs crates/tm-automata/src/alphabet.rs crates/tm-automata/src/antichain.rs crates/tm-automata/src/bitset.rs crates/tm-automata/src/compiled.rs crates/tm-automata/src/dfa.rs crates/tm-automata/src/explore.rs crates/tm-automata/src/fxhash.rs crates/tm-automata/src/graph.rs crates/tm-automata/src/inclusion.rs crates/tm-automata/src/nfa.rs

/root/repo/target/release/deps/libtm_automata-89ef90927c1f8b11.rmeta: crates/tm-automata/src/lib.rs crates/tm-automata/src/alphabet.rs crates/tm-automata/src/antichain.rs crates/tm-automata/src/bitset.rs crates/tm-automata/src/compiled.rs crates/tm-automata/src/dfa.rs crates/tm-automata/src/explore.rs crates/tm-automata/src/fxhash.rs crates/tm-automata/src/graph.rs crates/tm-automata/src/inclusion.rs crates/tm-automata/src/nfa.rs

crates/tm-automata/src/lib.rs:
crates/tm-automata/src/alphabet.rs:
crates/tm-automata/src/antichain.rs:
crates/tm-automata/src/bitset.rs:
crates/tm-automata/src/compiled.rs:
crates/tm-automata/src/dfa.rs:
crates/tm-automata/src/explore.rs:
crates/tm-automata/src/fxhash.rs:
crates/tm-automata/src/graph.rs:
crates/tm-automata/src/inclusion.rs:
crates/tm-automata/src/nfa.rs:
