/root/repo/target/release/deps/tm_bench-93a51d02eb18e6e9.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/tm_bench-93a51d02eb18e6e9: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
