/root/repo/target/release/deps/table3_liveness-c27de478979a9a6b.d: crates/bench/benches/table3_liveness.rs

/root/repo/target/release/deps/table3_liveness-c27de478979a9a6b: crates/bench/benches/table3_liveness.rs

crates/bench/benches/table3_liveness.rs:
