/root/repo/target/release/deps/tm_modelcheck-bce46ec206623d3b.d: src/lib.rs

/root/repo/target/release/deps/libtm_modelcheck-bce46ec206623d3b.rlib: src/lib.rs

/root/repo/target/release/deps/libtm_modelcheck-bce46ec206623d3b.rmeta: src/lib.rs

src/lib.rs:
