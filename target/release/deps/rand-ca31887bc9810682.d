/root/repo/target/release/deps/rand-ca31887bc9810682.d: crates/shims/rand/src/lib.rs

/root/repo/target/release/deps/librand-ca31887bc9810682.rlib: crates/shims/rand/src/lib.rs

/root/repo/target/release/deps/librand-ca31887bc9810682.rmeta: crates/shims/rand/src/lib.rs

crates/shims/rand/src/lib.rs:
