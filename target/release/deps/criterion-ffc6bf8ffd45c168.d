/root/repo/target/release/deps/criterion-ffc6bf8ffd45c168.d: crates/shims/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-ffc6bf8ffd45c168.rlib: crates/shims/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-ffc6bf8ffd45c168.rmeta: crates/shims/criterion/src/lib.rs

crates/shims/criterion/src/lib.rs:
