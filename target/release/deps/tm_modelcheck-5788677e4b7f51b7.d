/root/repo/target/release/deps/tm_modelcheck-5788677e4b7f51b7.d: src/lib.rs

/root/repo/target/release/deps/tm_modelcheck-5788677e4b7f51b7: src/lib.rs

src/lib.rs:
