/root/repo/target/release/deps/tm_bench-6187be69b9ab8a73.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libtm_bench-6187be69b9ab8a73.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libtm_bench-6187be69b9ab8a73.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
