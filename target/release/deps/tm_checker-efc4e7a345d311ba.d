/root/repo/target/release/deps/tm_checker-efc4e7a345d311ba.d: crates/core/src/lib.rs crates/core/src/liveness.rs crates/core/src/reduction.rs crates/core/src/report.rs crates/core/src/safety.rs crates/core/src/structural.rs

/root/repo/target/release/deps/libtm_checker-efc4e7a345d311ba.rlib: crates/core/src/lib.rs crates/core/src/liveness.rs crates/core/src/reduction.rs crates/core/src/report.rs crates/core/src/safety.rs crates/core/src/structural.rs

/root/repo/target/release/deps/libtm_checker-efc4e7a345d311ba.rmeta: crates/core/src/lib.rs crates/core/src/liveness.rs crates/core/src/reduction.rs crates/core/src/report.rs crates/core/src/safety.rs crates/core/src/structural.rs

crates/core/src/lib.rs:
crates/core/src/liveness.rs:
crates/core/src/reduction.rs:
crates/core/src/report.rs:
crates/core/src/safety.rs:
crates/core/src/structural.rs:
