/root/repo/target/release/deps/proptest-9d688be8e2fdb929.d: crates/shims/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-9d688be8e2fdb929.rlib: crates/shims/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-9d688be8e2fdb929.rmeta: crates/shims/proptest/src/lib.rs

crates/shims/proptest/src/lib.rs:
