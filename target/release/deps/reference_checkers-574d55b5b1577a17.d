/root/repo/target/release/deps/reference_checkers-574d55b5b1577a17.d: crates/bench/benches/reference_checkers.rs

/root/repo/target/release/deps/reference_checkers-574d55b5b1577a17: crates/bench/benches/reference_checkers.rs

crates/bench/benches/reference_checkers.rs:
