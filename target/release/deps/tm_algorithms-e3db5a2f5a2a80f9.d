/root/repo/target/release/deps/tm_algorithms-e3db5a2f5a2a80f9.d: crates/tm-algorithms/src/lib.rs crates/tm-algorithms/src/algorithm.rs crates/tm-algorithms/src/contention.rs crates/tm-algorithms/src/dstm.rs crates/tm-algorithms/src/explore.rs crates/tm-algorithms/src/runner.rs crates/tm-algorithms/src/sequential.rs crates/tm-algorithms/src/tl2.rs crates/tm-algorithms/src/two_phase.rs

/root/repo/target/release/deps/libtm_algorithms-e3db5a2f5a2a80f9.rlib: crates/tm-algorithms/src/lib.rs crates/tm-algorithms/src/algorithm.rs crates/tm-algorithms/src/contention.rs crates/tm-algorithms/src/dstm.rs crates/tm-algorithms/src/explore.rs crates/tm-algorithms/src/runner.rs crates/tm-algorithms/src/sequential.rs crates/tm-algorithms/src/tl2.rs crates/tm-algorithms/src/two_phase.rs

/root/repo/target/release/deps/libtm_algorithms-e3db5a2f5a2a80f9.rmeta: crates/tm-algorithms/src/lib.rs crates/tm-algorithms/src/algorithm.rs crates/tm-algorithms/src/contention.rs crates/tm-algorithms/src/dstm.rs crates/tm-algorithms/src/explore.rs crates/tm-algorithms/src/runner.rs crates/tm-algorithms/src/sequential.rs crates/tm-algorithms/src/tl2.rs crates/tm-algorithms/src/two_phase.rs

crates/tm-algorithms/src/lib.rs:
crates/tm-algorithms/src/algorithm.rs:
crates/tm-algorithms/src/contention.rs:
crates/tm-algorithms/src/dstm.rs:
crates/tm-algorithms/src/explore.rs:
crates/tm-algorithms/src/runner.rs:
crates/tm-algorithms/src/sequential.rs:
crates/tm-algorithms/src/tl2.rs:
crates/tm-algorithms/src/two_phase.rs:
