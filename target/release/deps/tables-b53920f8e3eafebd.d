/root/repo/target/release/deps/tables-b53920f8e3eafebd.d: crates/bench/src/bin/tables.rs

/root/repo/target/release/deps/tables-b53920f8e3eafebd: crates/bench/src/bin/tables.rs

crates/bench/src/bin/tables.rs:
