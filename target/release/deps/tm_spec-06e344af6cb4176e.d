/root/repo/target/release/deps/tm_spec-06e344af6cb4176e.d: crates/tm-spec/src/lib.rs crates/tm-spec/src/canonical.rs crates/tm-spec/src/det.rs crates/tm-spec/src/nondet.rs crates/tm-spec/src/state.rs crates/tm-spec/src/validate.rs

/root/repo/target/release/deps/libtm_spec-06e344af6cb4176e.rlib: crates/tm-spec/src/lib.rs crates/tm-spec/src/canonical.rs crates/tm-spec/src/det.rs crates/tm-spec/src/nondet.rs crates/tm-spec/src/state.rs crates/tm-spec/src/validate.rs

/root/repo/target/release/deps/libtm_spec-06e344af6cb4176e.rmeta: crates/tm-spec/src/lib.rs crates/tm-spec/src/canonical.rs crates/tm-spec/src/det.rs crates/tm-spec/src/nondet.rs crates/tm-spec/src/state.rs crates/tm-spec/src/validate.rs

crates/tm-spec/src/lib.rs:
crates/tm-spec/src/canonical.rs:
crates/tm-spec/src/det.rs:
crates/tm-spec/src/nondet.rs:
crates/tm-spec/src/state.rs:
crates/tm-spec/src/validate.rs:
