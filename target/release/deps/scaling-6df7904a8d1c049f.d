/root/repo/target/release/deps/scaling-6df7904a8d1c049f.d: crates/bench/benches/scaling.rs

/root/repo/target/release/deps/scaling-6df7904a8d1c049f: crates/bench/benches/scaling.rs

crates/bench/benches/scaling.rs:
