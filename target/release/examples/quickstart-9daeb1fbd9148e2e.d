/root/repo/target/release/examples/quickstart-9daeb1fbd9148e2e.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-9daeb1fbd9148e2e: examples/quickstart.rs

examples/quickstart.rs:
