/root/repo/target/release/examples/custom_tm-44063ca9cd05904a.d: examples/custom_tm.rs

/root/repo/target/release/examples/custom_tm-44063ca9cd05904a: examples/custom_tm.rs

examples/custom_tm.rs:
