/root/repo/target/release/examples/paper_figures-12edfbb0c8fc6d58.d: examples/paper_figures.rs

/root/repo/target/release/examples/paper_figures-12edfbb0c8fc6d58: examples/paper_figures.rs

examples/paper_figures.rs:
