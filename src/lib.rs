//! Facade crate re-exporting the whole tm-modelcheck workspace API.
pub use tm_algorithms as algorithms;
pub use tm_automata as automata;
pub use tm_checker as checker;
pub use tm_lang as lang;
pub use tm_spec as spec;
