//! Eviction conformance: a session that evicts compiled artifacts
//! between queries ([`Verifier::drop_run_graph`] / [`Verifier::drop_spec`])
//! must answer every re-query **bit-identically** to the session that
//! never evicted — verdicts, counterexample words, lassos, and notations.
//! Eviction may only cost time (the rebuild) and is reported in
//! [`tm_checker::QueryStats::rebuilds`]; this is the contract the
//! memory-budgeted `tm-service` layer rests on.

use tm_algorithms::{
    AggressiveCm, DstmTm, PoliteCm, SequentialTm, Tl2Tm, TwoPhaseTm, ValidationStyle,
    WithContentionManager,
};
use tm_checker::{LivenessVerdict, SafetyVerdict, SpecMode, Verifier};
use tm_lang::{LivenessProperty, SafetyProperty};

/// The Table 3 roster rows, rebuilt per call (construction is cheap).
fn liveness_verdict(
    verifier: &mut Verifier,
    name: &str,
    property: LivenessProperty,
) -> (LivenessVerdict, usize) {
    let verdict = match name {
        "sequential" => verifier.check_liveness(&SequentialTm::new(2, 1), property),
        "2PL" => verifier.check_liveness(&TwoPhaseTm::new(2, 1), property),
        "dstm+aggressive" => verifier.check_liveness(
            &WithContentionManager::new(DstmTm::new(2, 1), AggressiveCm),
            property,
        ),
        "TL2+polite" => verifier.check_liveness(
            &WithContentionManager::new(Tl2Tm::new(2, 1), PoliteCm),
            property,
        ),
        other => panic!("unknown roster row: {other}"),
    };
    let rebuilds = verdict.stats.rebuilds;
    (verdict.into_liveness().expect("liveness query"), rebuilds)
}

fn assert_liveness_identical(kept: &LivenessVerdict, evicted: &LivenessVerdict, context: &str) {
    assert_eq!(kept.holds(), evicted.holds(), "{context}: verdict");
    assert_eq!(kept.tm_states, evicted.tm_states, "{context}: states");
    assert_eq!(
        kept.counterexample(),
        evicted.counterexample(),
        "{context}: lasso"
    );
    if let (Some(a), Some(b)) = (kept.counterexample(), evicted.counterexample()) {
        assert_eq!(a.cycle_notation(), b.cycle_notation(), "{context}: notation");
    }
}

#[test]
fn evicted_run_graphs_requery_bit_identically() {
    for pool in [1, 4] {
        let mut kept = Verifier::new(2, 1).pool_size(pool);
        let mut evicting = Verifier::new(2, 1).pool_size(pool);
        // Names are the TMs' own `name()`s — the run-graph cache keys.
        for name in ["sequential", "2PL", "dstm+aggressive", "TL2+polite"] {
            for property in LivenessProperty::all() {
                let (reference, _) = liveness_verdict(&mut kept, name, property);
                // Evict the graph before *every* query: each one is a
                // cold rebuild after the first.
                let had_graph = evicting.drop_run_graph(name);
                let (requeried, rebuilds) = liveness_verdict(&mut evicting, name, property);
                assert_liveness_identical(
                    &reference,
                    &requeried,
                    &format!("{name}/{property} pool={pool}"),
                );
                assert_eq!(
                    rebuilds,
                    usize::from(had_graph),
                    "{name}/{property}: a build after eviction is a rebuild"
                );
            }
        }
        // 4 TMs × 3 properties: one first build plus two rebuilds each.
        assert_eq!(kept.run_graph_builds(), 4);
        assert_eq!(kept.run_graph_rebuilds(), 0);
        assert_eq!(evicting.run_graph_builds(), 12);
        assert_eq!(evicting.run_graph_rebuilds(), 8);
    }
}

fn safety_verdict(
    verifier: &mut Verifier,
    name: &str,
    property: SafetyProperty,
) -> (SafetyVerdict, usize) {
    let verdict = match name {
        "sequential" => verifier.check_safety(&SequentialTm::new(2, 2), property),
        "2PL" => verifier.check_safety(&TwoPhaseTm::new(2, 2), property),
        "dstm" => verifier.check_safety(&DstmTm::new(2, 2), property),
        "modified-TL2+polite" => verifier.check_safety(
            &WithContentionManager::new(
                Tl2Tm::with_validation(2, 2, ValidationStyle::RValidateThenChkLock),
                PoliteCm,
            ),
            property,
        ),
        other => panic!("unknown roster row: {other}"),
    };
    let rebuilds = verdict.stats.rebuilds;
    (verdict.into_safety().expect("safety query"), rebuilds)
}

#[test]
fn evicted_specs_requery_bit_identically() {
    // The paper's interesting safety rows: a verifying TM per property
    // plus the violating modified TL2 (counterexample word must survive
    // eviction byte-for-byte). Lazy is the session default; eager also
    // pinned since its artifact type (compiled DFA) evicts separately.
    for mode in [SpecMode::Lazy, SpecMode::Eager] {
        let mut kept = Verifier::new(2, 2).spec_mode(mode);
        let mut evicting = Verifier::new(2, 2).spec_mode(mode);
        for property in SafetyProperty::all() {
            for name in ["sequential", "dstm", "modified-TL2+polite"] {
                let (reference, _) = safety_verdict(&mut kept, name, property);
                let had_spec = evicting.drop_spec(property);
                let (requeried, rebuilds) = safety_verdict(&mut evicting, name, property);
                assert_eq!(
                    reference.holds(),
                    requeried.holds(),
                    "{name}/{property:?} {mode:?}: verdict"
                );
                assert_eq!(
                    reference.counterexample(),
                    requeried.counterexample(),
                    "{name}/{property:?} {mode:?}: word"
                );
                assert_eq!(
                    rebuilds,
                    usize::from(had_spec),
                    "{name}/{property:?} {mode:?}: rebuild accounting"
                );
            }
        }
        // 2 properties, 3 TMs each: every query after the first per
        // property was answered from a freshly rebuilt artifact.
        assert_eq!(kept.spec_builds(), 2);
        assert_eq!(kept.spec_rebuilds(), 0);
        assert_eq!(evicting.spec_builds(), 6);
        assert_eq!(evicting.spec_rebuilds(), 4);
    }
}

#[test]
fn dropping_unknown_artifacts_is_a_no_op() {
    let mut verifier = Verifier::new(2, 1);
    assert!(!verifier.drop_run_graph("dstm"));
    assert!(!verifier.drop_spec(SafetyProperty::Opacity));
    let verdict = verifier.check_liveness(
        &WithContentionManager::new(DstmTm::new(2, 1), AggressiveCm),
        LivenessProperty::ObstructionFreedom,
    );
    // A first-time build after a no-op drop is not a rebuild.
    assert_eq!(verdict.stats.rebuilds, 0);
    assert_eq!(verifier.run_graph_rebuilds(), 0);
    assert!(verifier.drop_run_graph("dstm+aggressive"));
    assert!(verifier.run_graph_heap_bytes("dstm+aggressive").is_none());
}
