//! Differential conformance harness for the inclusion-check engine
//! hierarchy: the seed reference (`check_inclusion_reference`), the
//! compiled index-based checker (`check_inclusion_compiled`), and the
//! on-the-fly product engine (`check_inclusion_otf`) — sequential and
//! parallel — must agree on every Table 2 (TM, property) pair, on the TM
//! steppers directly, and on randomized NFA/DFA pairs.
//!
//! Counterexamples additionally *replay*: the word is accepted by the
//! implementation automaton and rejected by the specification DFA
//! (`CompiledDfa::accepts`).

use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicUsize, Ordering};

use proptest::prelude::*;
use rand::{rngs::StdRng, Rng, SeedableRng};

use tm_modelcheck::algorithms::{
    DstmTm, MostGeneralSource, PoliteCm, SequentialTm, Tl2Tm, TwoPhaseTm, ValidationStyle,
    WithContentionManager,
};
use tm_modelcheck::automata::{
    check_inclusion, check_inclusion_compiled, check_inclusion_otf_stats,
    check_inclusion_otf_threads, check_inclusion_reference, CompiledDfa, CompiledNfa, Dfa,
    InclusionResult, LetterId, Nfa, NfaSource,
};
use tm_modelcheck::lang::SafetyProperty;
use tm_modelcheck::spec::DetSpec;

const MAX_STATES: usize = 20_000_000;

/// Letter ids of `word` over `spec`'s alphabet, mapping unknown letters
/// to an id the specification rejects.
fn spec_ids<L: Clone + Eq + Hash>(spec: &CompiledDfa<L>, word: &[L]) -> Vec<LetterId> {
    word.iter()
        .map(|l| {
            spec.alphabet()
                .get(l)
                .unwrap_or(spec.alphabet().len() as LetterId)
        })
        .collect()
}

/// Asserts that a counterexample of `L(imp) ⊆ L(spec)` replays: accepted
/// by the implementation, rejected by the specification.
fn assert_replays<L: Clone + Eq + Hash + std::fmt::Debug>(
    imp: &CompiledNfa,
    imp_alphabet: &tm_modelcheck::automata::Alphabet<L>,
    spec: &CompiledDfa<L>,
    word: &[L],
    context: &str,
) {
    let imp_ids: Vec<LetterId> = word
        .iter()
        .map(|l| {
            imp_alphabet
                .get(l)
                .unwrap_or_else(|| panic!("{context}: counterexample letter {l:?} not interned"))
        })
        .collect();
    assert!(
        imp.accepts(&imp_ids),
        "{context}: counterexample not accepted by the implementation: {word:?}"
    );
    assert!(
        !spec.accepts(&spec_ids(spec, word)),
        "{context}: counterexample accepted by the specification: {word:?}"
    );
}

/// Runs every engine on one (implementation NFA, compiled spec) pair and
/// cross-checks them; returns the reference result.
fn conform<L: Clone + Eq + Hash + Sync + std::fmt::Debug>(
    nfa: &Nfa<L>,
    dfa: &Dfa<L>,
    spec: &CompiledDfa<L>,
    context: &str,
) -> InclusionResult<L> {
    let reference = check_inclusion_reference(nfa, dfa);
    let light = check_inclusion(nfa, dfa);
    assert_eq!(light, reference, "{context}: check_inclusion");
    let compiled = check_inclusion_compiled(nfa, spec);
    assert_eq!(compiled, reference, "{context}: compiled");

    let mut alphabet = spec.alphabet().clone();
    let imp = CompiledNfa::compile(nfa, &mut alphabet);
    let source = NfaSource::new(&imp, &alphabet);
    let otf_seq = check_inclusion_otf_threads(&source, spec, 1).expect("in bounds");
    assert_eq!(otf_seq, reference, "{context}: otf sequential");
    for threads in [2, 4] {
        let otf_par = check_inclusion_otf_threads(&source, spec, threads).expect("in bounds");
        assert_eq!(
            otf_par.holds(),
            reference.holds(),
            "{context}: otf x{threads} verdict"
        );
        // The parallel engine is deterministic and reproduces the
        // sequential word; only `product_states` of a violating run may
        // differ (it finishes the violating level).
        assert_eq!(
            otf_par.counterexample(),
            reference.counterexample(),
            "{context}: otf x{threads} word"
        );
        if reference.holds() {
            assert_eq!(
                otf_par.product_states(),
                reference.product_states(),
                "{context}: otf x{threads} product states"
            );
        }
    }
    if let Some(word) = reference.counterexample() {
        assert_replays(&imp, &alphabet, spec, word, context);
    }
    reference
}

/// All Table 2 (TM, property) pairs: every engine agrees — same verdict,
/// same shortest counterexample, and same `product_states` in the
/// sequential engines — and every counterexample replays.
#[test]
fn table2_all_engines_agree() {
    let roster = tm_bench::table2_roster();
    for property in SafetyProperty::all() {
        let (dfa, _) = DetSpec::new(property, 2, 2).to_dfa(MAX_STATES);
        let spec = dfa.compile();
        for (name, nfa, _) in &roster {
            let context = format!("{} / {name}", property.short_name());
            let result = conform(nfa, &dfa, &spec, &context);
            if let Some(word) = result.counterexample() {
                let word: tm_modelcheck::lang::Word = word.iter().copied().collect();
                assert!(!property.holds(&word), "{context}: oracle accepts {word}");
            }
        }
    }
}

/// The on-the-fly engine fed by the TM steppers directly (no NFA ever
/// built) agrees with the materialize-then-check pipeline on every Table
/// 2 TM — verdict, word, sequential product count, and the implementation
/// state count discovered on the fly.
#[test]
fn tm_steppers_match_materialized_pipeline() {
    fn check_stepper<A>(tm: &A, name: &str)
    where
        A: tm_modelcheck::algorithms::TmAlgorithm + Sync,
        A::State: Send + Sync,
    {
        for property in SafetyProperty::all() {
            let (dfa, _) = DetSpec::new(property, 2, 2).to_dfa(MAX_STATES);
            let spec = dfa.compile();
            let explored = tm_modelcheck::algorithms::most_general_nfa(tm, MAX_STATES);
            let expected = check_inclusion_compiled(&explored.nfa, &spec);
            let source = MostGeneralSource::new(tm, spec.alphabet().clone());
            let context = format!("{} / {name} (stepper)", property.short_name());
            let (otf_seq, stats) = check_inclusion_otf_stats(&source, &spec, 1).expect("in bounds");
            assert_eq!(otf_seq, expected, "{context}");
            if expected.holds() {
                assert_eq!(
                    stats.impl_states,
                    explored.num_states(),
                    "{context}: impl state count"
                );
            }
            let otf_par = check_inclusion_otf_threads(&source, &spec, 4).expect("in bounds");
            assert_eq!(otf_par.holds(), expected.holds(), "{context}: x4 verdict");
            assert_eq!(
                otf_par.counterexample(),
                expected.counterexample(),
                "{context}: x4 word"
            );
            if let Some(word) = expected.counterexample() {
                let mut alphabet = spec.alphabet().clone();
                let imp = CompiledNfa::compile(&explored.nfa, &mut alphabet);
                assert_replays(&imp, &alphabet, &spec, word, &context);
            }
        }
    }

    check_stepper(&SequentialTm::new(2, 2), "sequential");
    check_stepper(&TwoPhaseTm::new(2, 2), "2PL");
    check_stepper(&DstmTm::new(2, 2), "dstm");
    check_stepper(&Tl2Tm::new(2, 2), "TL2");
    check_stepper(
        &WithContentionManager::new(
            Tl2Tm::with_validation(2, 2, ValidationStyle::RValidateThenChkLock),
            PoliteCm,
        ),
        "modified-TL2+polite",
    );
}

/// The `Verifier` session — lazy and eager spec modes, pool sizes 1 and
/// 4, artifacts cached across all five TMs and both properties — agrees
/// with the pre-session `SafetyChecker` on every Table 2 pair: verdict,
/// counterexample word, and (on verified runs) TM state count.
#[test]
fn safety_sessions_match_safety_checker_on_table2() {
    use tm_modelcheck::checker::{SafetyChecker, SpecMode, Verifier};

    fn check_case<A>(
        tm: &A,
        name: &str,
        checker: &SafetyChecker,
        sessions: &mut [(&str, Verifier)],
    ) where
        A: tm_modelcheck::algorithms::TmAlgorithm + Sync,
        A::State: Send + Sync,
    {
        let baseline = checker.check(tm);
        for (label, verifier) in sessions.iter_mut() {
            let context = format!("{} / {name} ({label})", checker.property().short_name());
            let got = verifier
                .check_safety(tm, checker.property())
                .into_safety()
                .expect("safety query");
            assert_eq!(got.holds(), baseline.holds(), "{context}: verdict");
            assert_eq!(
                got.counterexample(),
                baseline.counterexample(),
                "{context}: word"
            );
            if baseline.holds() {
                // Full reachable TM state count — engine-independent. (On
                // violations the explored portion legitimately differs
                // between sequential and parallel runs.)
                assert_eq!(got.tm_states, baseline.tm_states, "{context}: tm states");
            }
        }
    }

    for property in SafetyProperty::all() {
        let checker = SafetyChecker::new(property, 2, 2);
        let mut sessions = [
            ("lazy/p1", Verifier::new(2, 2).pool_size(1)),
            ("lazy/p4", Verifier::new(2, 2).pool_size(4)),
            (
                "eager/p1",
                Verifier::new(2, 2).spec_mode(SpecMode::Eager).pool_size(1),
            ),
            (
                "eager/p4",
                Verifier::new(2, 2).spec_mode(SpecMode::Eager).pool_size(4),
            ),
        ];
        check_case(&SequentialTm::new(2, 2), "sequential", &checker, &mut sessions);
        check_case(&TwoPhaseTm::new(2, 2), "2PL", &checker, &mut sessions);
        check_case(&DstmTm::new(2, 2), "dstm", &checker, &mut sessions);
        check_case(&Tl2Tm::new(2, 2), "TL2", &checker, &mut sessions);
        check_case(
            &WithContentionManager::new(
                Tl2Tm::with_validation(2, 2, ValidationStyle::RValidateThenChkLock),
                PoliteCm,
            ),
            "modified-TL2+polite",
            &checker,
            &mut sessions,
        );
        for (label, verifier) in &sessions {
            // Five TMs, one property per loop iteration: each session
            // built its specification artifact exactly once.
            assert_eq!(verifier.spec_builds(), 1, "{label}: spec built once");
        }
    }
}

const NFA_ALPHABET: [char; 4] = ['a', 'b', 'c', 'd'];

/// A random NFA over a bounded alphabet with bounded states/transitions
/// (25% ε), state 0 initial.
fn arb_nfa() -> impl Strategy<Value = Nfa<char>> {
    (
        1usize..=7,
        proptest::collection::vec((0usize..7, 0usize..5, 0usize..7), 0..18),
    )
        .prop_map(|(states, edges)| build_nfa(states, &edges))
}

fn build_nfa(states: usize, edges: &[(usize, usize, usize)]) -> Nfa<char> {
    let mut nfa = Nfa::new();
    for _ in 0..states {
        nfa.add_state();
    }
    nfa.set_initial(0);
    for &(from, label, to) in edges {
        let (from, to) = (from % states, to % states);
        let label = if label == NFA_ALPHABET.len() {
            None
        } else {
            Some(NFA_ALPHABET[label])
        };
        nfa.add_transition(from, label, to);
    }
    nfa
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Fuzz: on random NFA/DFA pairs, the on-the-fly engine (sequential
    /// and parallel) is equivalent to the compiled checker, so the
    /// parallel path is exercised on adversarial shapes, not just the
    /// Table 2 examples.
    #[test]
    fn otf_equals_compiled_on_random_pairs((left, right) in (arb_nfa(), arb_nfa())) {
        let dfa = Dfa::determinize(&right, NFA_ALPHABET.to_vec());
        let spec = dfa.compile();
        conform(&left, &dfa, &spec, "proptest pair");
    }
}

/// The same differential property driven by explicit `rand`-shim seeds —
/// a reproducible sweep wider than the proptest default stream.
#[test]
fn otf_equals_compiled_on_seeded_pairs() {
    for seed in 0..48u64 {
        let mut rng = StdRng::seed_from_u64(0xd1ff_0000 + seed);
        let random_nfa = |rng: &mut StdRng| {
            let states = 1 + rng.gen_range(0..7);
            let edges: Vec<(usize, usize, usize)> = (0..rng.gen_range(0..20))
                .map(|_| {
                    (
                        rng.gen_range(0..states),
                        rng.gen_range(0..NFA_ALPHABET.len() + 1),
                        rng.gen_range(0..states),
                    )
                })
                .collect();
            build_nfa(states, &edges)
        };
        let left = random_nfa(&mut rng);
        let right = random_nfa(&mut rng);
        let dfa = Dfa::determinize(&right, NFA_ALPHABET.to_vec());
        let spec = dfa.compile();
        conform(&left, &dfa, &spec, &format!("seed {seed}"));
    }
}

// ---------------------------------------------------------------------
// Regression: `check_inclusion` on a sequential-TM-shaped instance (a
// tiny implementation against a large specification) must not re-hash
// specification letters per call — the (2,2) small-instance regression
// where compiling the spec table dominated the whole check.

static LABEL_HASHES: AtomicUsize = AtomicUsize::new(0);

/// A label whose `Hash` impl counts invocations.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
struct Counted(u32);

impl Hash for Counted {
    fn hash<H: Hasher>(&self, state: &mut H) {
        LABEL_HASHES.fetch_add(1, Ordering::Relaxed);
        self.0.hash(state);
    }
}

#[test]
fn small_instance_check_does_no_per_call_letter_rehash() {
    // Spec: 40 states over 12 letters (the sequential TM shape: spec
    // table cells vastly outnumber implementation edges).
    let letters: Vec<Counted> = (0..12).map(Counted).collect();
    let mut spec = Dfa::new(letters.clone());
    for _ in 0..40 {
        spec.add_state();
    }
    spec.set_initial(0);
    for q in 0..40usize {
        for l in 0..12u32 {
            spec.set_transition(q, &Counted(l), (q + l as usize) % 40);
        }
    }
    // Implementation: 3 states, 5 edges.
    let mut imp: Nfa<Counted> = Nfa::new();
    for _ in 0..3 {
        imp.add_state();
    }
    imp.set_initial(0);
    imp.add_transition(0, Some(Counted(0)), 1);
    imp.add_transition(0, None, 2);
    imp.add_transition(1, Some(Counted(1)), 2);
    imp.add_transition(2, Some(Counted(2)), 0);
    imp.add_transition(2, Some(Counted(0)), 2);

    let warm = check_inclusion(&imp, &spec);
    let before = LABEL_HASHES.load(Ordering::Relaxed);
    let again = check_inclusion(&imp, &spec);
    let per_call = LABEL_HASHES.load(Ordering::Relaxed) - before;
    assert_eq!(again, warm);
    // Interning the implementation's own edge labels is the only hashing
    // allowed: one lookup per labelled edge, nothing proportional to the
    // specification alphabet (12 letters) or its table.
    assert!(
        per_call <= imp.num_transitions(),
        "check_inclusion re-hashed letters: {per_call} hashes for {} edges",
        imp.num_transitions()
    );
}
