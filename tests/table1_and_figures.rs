//! Integration tests pinning Table 1 (runs and words) and the
//! illustrative examples of Figures 1–3.

use tm_modelcheck::algorithms::{
    execute_schedule, DstmTm, SequentialTm, Tl2Tm, TwoPhaseTm,
};
use tm_modelcheck::lang::{
    is_opaque, is_strictly_serializable, Command, SafetyProperty, VarId, Word,
};
use tm_modelcheck::spec::NondetSpec;

fn read(v: usize) -> Command {
    Command::Read(VarId::new(v))
}
fn write(v: usize) -> Command {
    Command::Write(VarId::new(v))
}
const COMMIT: Command = Command::Commit;

/// Table 1, rows "seq": scheduler output 11122 / 112122.
#[test]
fn table1_sequential_rows() {
    let tm = SequentialTm::new(2, 2);
    let t1 = [read(0), write(1), COMMIT];
    let t2 = [write(0), COMMIT];
    let run = execute_schedule(&tm, &[&t1, &t2], &[0, 0, 0, 1, 1]).unwrap();
    assert_eq!(run.word().to_string(), "(r,1)1 (w,2)1 c1 (w,1)2 c2");

    let t2 = [write(0), write(0), COMMIT];
    let run = execute_schedule(&tm, &[&t1, &t2], &[0, 0, 1, 0, 1, 1]).unwrap();
    assert_eq!(run.word().to_string(), "(r,1)1 (w,2)1 a2 c1 (w,1)2 c2");
}

/// Table 1, rows "2PL": the run shows lock acquisitions as internal
/// steps; the word hides them.
#[test]
fn table1_two_phase_rows() {
    let tm = TwoPhaseTm::new(2, 2);
    let t1 = [read(0), write(1), COMMIT];
    let run = execute_schedule(&tm, &[&t1, &[write(1)]], &[0, 0, 0, 0, 0, 1]).unwrap();
    assert_eq!(
        run.to_notation(),
        "(rl,1)1, (r,1)1, (wl,2)1, (w,2)1, c1, (wl,2)2"
    );
    assert_eq!(run.word().to_string(), "(r,1)1 (w,2)1 c1");

    // 1211112: t2's write of v1 is blocked by t1's read lock and aborts.
    let t2 = [write(0), write(1)];
    let run = execute_schedule(&tm, &[&t1, &t2], &[0, 1, 0, 0, 0, 0, 1]).unwrap();
    assert_eq!(run.word().to_string(), "a2 (r,1)1 (w,2)1 c1");
}

/// Table 1, rows "dstm": ownership stealing and validation.
#[test]
fn table1_dstm_rows() {
    let tm = DstmTm::new(2, 2);
    let t1 = [read(0), write(1), COMMIT];
    let t2 = [write(0), COMMIT];

    // 12211112: t1 reads v1, t2 owns+writes v1, t1 owns v2, writes,
    // validates (killing t2) and commits; t2 reports its abort.
    let run = execute_schedule(&tm, &[&t1, &t2], &[0, 1, 1, 0, 0, 0, 0, 1]).unwrap();
    assert_eq!(
        run.to_notation(),
        "(r,1)1, (o,1)2, (w,1)2, (o,2)1, (w,2)1, v1, c1, a2"
    );
    assert_eq!(run.word().to_string(), "(r,1)1 (w,1)2 (w,2)1 c1 a2");

    // 12222111: t2 commits first, invalidating t1's read; t1 aborts.
    let run = execute_schedule(&tm, &[&t1, &t2], &[0, 1, 1, 1, 1, 0, 0, 0]).unwrap();
    assert_eq!(run.word().to_string(), "(r,1)1 (w,1)2 c2 (w,2)1 a1");
}

/// Table 1, rows "TL2": commit-time locking and validation.
#[test]
fn table1_tl2_rows() {
    let tm = Tl2Tm::new(2, 2);
    let t1 = [read(0), write(1), COMMIT];
    let t2 = [write(0), COMMIT];

    // 112112212: both commit (disjoint write sets).
    let run = execute_schedule(&tm, &[&t1, &t2], &[0, 0, 1, 0, 0, 1, 1, 0, 1]).unwrap();
    assert_eq!(
        run.to_notation(),
        "(r,1)1, (w,2)1, (w,1)2, (l,2)1, v1, (l,1)2, v2, c1, c2"
    );
    assert_eq!(
        run.word().to_string(),
        "(r,1)1 (w,2)1 (w,1)2 c1 c2"
    );
}

/// Figure 1: both words fail strict serializability; dropping the third
/// commit restores it.
#[test]
fn figure1_strict_serializability_analysis() {
    let a: Word = "(w,1)2 (r,1)1 (r,2)3 c2 (w,2)1 (r,1)3 c1 c3".parse().unwrap();
    assert!(!is_strictly_serializable(&a));
    let a_prefix = a.prefix(a.len() - 1);
    assert!(is_strictly_serializable(&a_prefix));

    let b: Word = "(w,1)2 (r,2)2 (r,3)3 (r,1)1 c2 (w,2)3 (w,3)1 c1 c3".parse().unwrap();
    assert!(!is_strictly_serializable(&b));
}

/// Figure 2: opacity rejects words whose aborting/unfinished readers saw
/// inconsistent snapshots, although strict serializability accepts them.
#[test]
fn figure2_opacity_analysis() {
    let a: Word = "(w,1)2 (r,1)1 (r,2)3 c2 (w,2)1 (r,1)3 c1".parse().unwrap();
    assert!(is_strictly_serializable(&a) && !is_opaque(&a));

    let b: Word = "(w,1)2 (r,1)1 c2 (r,2)3 a3 (w,2)1 c1".parse().unwrap();
    assert!(is_strictly_serializable(&b) && !is_opaque(&b));
}

/// Figure 3, conditions C1–C4: words realizing each disallowed-commit
/// condition are rejected by the specification (2 threads suffice).
#[test]
fn figure3_commit_conditions() {
    let spec = NondetSpec::new(SafetyProperty::StrictSerializability, 2, 2);
    let nfa = spec.to_nfa(2_000_000).nfa;

    // C1: x serializes before y (its read of v1 precedes y's commit of
    // v1), y commits a write of v2, then x *reads* v2 — observing a value
    // from its own future. The commit of x must be disallowed.
    let c1: Word = "(r,1)1 (w,1)2 (w,2)2 c2 (r,2)1 c1".parse().unwrap();
    assert!(!is_strictly_serializable(&c1));
    assert!(!nfa.accepts(c1.statements()));

    // C2: x serializes before y, x *writes* v2, and y reads v2 before x
    // commits (so y saw the pre-x value) — yet both commit.
    let c2: Word = "(r,1)1 (w,2)1 (w,1)2 (r,2)2 c2 c1".parse().unwrap();
    assert!(!is_strictly_serializable(&c2));
    assert!(!nfa.accepts(c2.statements()));

    // C3: x serializes before y, both write v2, and y commits first — the
    // commit order contradicts the serialization order.
    let c3: Word = "(r,1)1 (w,2)1 (w,1)2 (w,2)2 c2 c1".parse().unwrap();
    assert!(!is_strictly_serializable(&c3));
    assert!(!nfa.accepts(c3.statements()));

    // C4: x reads v before y's commit of v and tries to commit after while
    // also conflicting the other way (the w1 cycle).
    let c4: Word = "(w,2)1 (w,1)2 (r,2)2 (r,1)1 c2 c1".parse().unwrap();
    assert!(!is_strictly_serializable(&c4));
    assert!(!nfa.accepts(c4.statements()));
}

/// Every Table 1 word is accepted by the corresponding safety
/// specifications (they are real TM histories).
#[test]
fn table1_words_are_opaque() {
    for text in [
        "(r,1)1 (w,2)1 c1 (w,1)2 c2",
        "(r,1)1 (w,2)1 a2 c1 (w,1)2 c2",
        "a2 (r,1)1 (w,2)1 c1",
        "(r,1)1 (w,1)2 (w,2)1 c1 a2",
        "(r,1)1 (w,1)2 c2 (w,2)1 a1",
        "(r,1)1 (w,2)1 (w,1)2 c1 c2",
        "(r,1)1 (w,2)1 (w,1)2 a1 c2",
    ] {
        let w: Word = text.parse().unwrap();
        assert!(is_opaque(&w), "{text}");
    }
}
