//! Integration tests around the reduction theorems (§4, §6): structural
//! properties of the paper's TMs, the full reduction pipeline, and
//! empirical confirmation that verification at the (2,2) bound carries to
//! larger instances.

use tm_modelcheck::algorithms::{
    DstmTm, KarmaCm, PastAbortsCm, SequentialTm, Tl2Tm, TwoPhaseTm, WithContentionManager,
};
use tm_modelcheck::checker::{
    check_all_structural, check_structural, verify_with_reduction, SafetyChecker,
    StructuralProperty,
};
use tm_modelcheck::lang::SafetyProperty;

/// §4: the four TMs satisfy the structural properties (bounded-exhaustive
/// evidence at depth 5).
#[test]
fn paper_tms_satisfy_structural_properties() {
    for report in check_all_structural(&SequentialTm::new(2, 2), 5) {
        assert!(report.holds(), "seq {}: {:?}", report.property, report.violation);
    }
    for report in check_all_structural(&TwoPhaseTm::new(2, 2), 5) {
        assert!(report.holds(), "2PL {}: {:?}", report.property, report.violation);
    }
}

/// The paper's P1 limitation: a manager prioritizing by past aborts falls
/// outside the reduction theorem, and the harness produces the witness.
#[test]
fn past_aborts_cm_violates_p1_with_witness() {
    let tm = WithContentionManager::new(DstmTm::new(2, 1), PastAbortsCm::new(2, 2));
    let report = check_structural(&tm, StructuralProperty::TransactionProjection, 5);
    let violation = report.violation.expect("P1 violated");
    // The witness drops an aborting transaction...
    assert!(violation
        .original
        .iter()
        .any(|s| s.kind.is_abort()));
    assert!(violation.transformed.len() < violation.original.len());
    // ... and the projection is genuinely rejected.
    let explored = tm_modelcheck::algorithms::most_general_nfa(&tm, 1_000_000);
    assert!(explored.nfa.accepts(violation.original.statements()));
    assert!(!explored.nfa.accepts(violation.transformed.statements()));
}

/// Extension finding: the Karma manager (priority = accesses this
/// transaction) also violates P1 — dropping the victim's transaction can
/// forbid an abort the original word contained.
#[test]
fn karma_cm_violates_p1() {
    let tm = WithContentionManager::new(DstmTm::new(2, 1), KarmaCm::new(2, 2));
    let report = check_structural(&tm, StructuralProperty::TransactionProjection, 6);
    assert!(
        !report.holds(),
        "karma should violate transaction projection"
    );
}

/// The full reduction pipeline for 2PL: (2,2) verdict + structural
/// evidence + spot checks at other sizes.
#[test]
fn reduction_pipeline_two_phase() {
    let evidence = verify_with_reduction(
        TwoPhaseTm::new,
        SafetyProperty::Opacity,
        4,
        &[(2, 1), (3, 1)],
    );
    assert!(evidence.concludes());
    assert!(evidence.base_verdict.holds());
    assert_eq!(evidence.structural.len(), 4);
}

/// Empirical reduction confirmation: TMs verified at (2,2) also pass at
/// (2,3) and (3,2) — the sizes the reduction theorem promises are
/// redundant.
#[test]
fn spot_checks_beyond_the_bound() {
    for (n, k) in [(2usize, 3usize), (3, 2)] {
        let checker = SafetyChecker::new(SafetyProperty::Opacity, n, k);
        assert!(
            checker.check(&SequentialTm::new(n, k)).holds(),
            "seq ({n},{k})"
        );
        assert!(
            checker.check(&TwoPhaseTm::new(n, k)).holds(),
            "2PL ({n},{k})"
        );
        assert!(
            checker.check(&DstmTm::new(n, k)).holds(),
            "DSTM ({n},{k})"
        );
    }
}

/// The modified TL2 already fails at the reduction bound — consistent with
/// Theorem 1's contrapositive: an unsafe TM has a (2,2) witness.
#[test]
fn unsafe_tm_fails_at_the_bound_already() {
    use tm_modelcheck::algorithms::ValidationStyle;
    let make = |n, k| Tl2Tm::with_validation(n, k, ValidationStyle::RValidateThenChkLock);
    let evidence = verify_with_reduction(make, SafetyProperty::Opacity, 4, &[]);
    assert!(!evidence.concludes());
    assert!(!evidence.base_verdict.holds());
}
