//! Integration tests pinning the paper's headline results (Tables 2 and
//! 3, Theorems 4 and 6) end to end.

use tm_modelcheck::algorithms::{
    AggressiveCm, DstmTm, PoliteCm, SequentialTm, Tl2Tm, TwoPhaseTm,
    ValidationStyle, WithContentionManager,
};
use tm_modelcheck::checker::{check_liveness, check_safety, SafetyChecker};
use tm_modelcheck::lang::{
    is_opaque, is_strictly_serializable, LivenessProperty, SafetyProperty,
};

/// Paper Theorem 4: the sequential TM, 2PL, DSTM, and TL2 ensure opacity
/// (and hence strict serializability) — Table 2's four Y rows.
#[test]
fn theorem4_all_four_tms_are_opaque() {
    for property in SafetyProperty::all() {
        let checker = SafetyChecker::new(property, 2, 2);
        let verdicts = [
            checker.check(&SequentialTm::new(2, 2)),
            checker.check(&TwoPhaseTm::new(2, 2)),
            checker.check(&DstmTm::new(2, 2)),
            checker.check(&Tl2Tm::new(2, 2)),
        ];
        for v in &verdicts {
            assert!(
                v.holds(),
                "{} should ensure {property}: {:?}",
                v.tm_name,
                v.counterexample()
            );
        }
    }
}

/// Table 2, "Size" column: the sequential TM has exactly 3 states; the
/// others land in the paper's ballpark (exact counts are
/// encoding-dependent; see EXPERIMENTS.md).
#[test]
fn table2_state_counts() {
    let seq = tm_modelcheck::algorithms::most_general_nfa(&SequentialTm::new(2, 2), 100);
    assert_eq!(seq.num_states(), 3); // paper: 3

    let tpl = tm_modelcheck::algorithms::most_general_nfa(&TwoPhaseTm::new(2, 2), 10_000);
    assert!(
        (50..500).contains(&tpl.num_states()),
        "2PL: {}",
        tpl.num_states()
    ); // paper: 99

    let dstm = tm_modelcheck::algorithms::most_general_nfa(&DstmTm::new(2, 2), 100_000);
    assert!(
        (1_000..10_000).contains(&dstm.num_states()),
        "DSTM: {}",
        dstm.num_states()
    ); // paper: 1846

    let tl2 = tm_modelcheck::algorithms::most_general_nfa(&Tl2Tm::new(2, 2), 1_000_000);
    assert!(
        (5_000..100_000).contains(&tl2.num_states()),
        "TL2: {}",
        tl2.num_states()
    ); // paper: 21568
}

/// Table 2, last row: modified TL2 (split validation in the unsafe order)
/// with the polite manager violates strict serializability — and the
/// counterexample matches the shape of the paper's w1.
#[test]
fn table2_modified_tl2_counterexample() {
    let tm = WithContentionManager::new(
        Tl2Tm::with_validation(2, 2, ValidationStyle::RValidateThenChkLock),
        PoliteCm,
    );
    for property in SafetyProperty::all() {
        let verdict = check_safety(&tm, property);
        let word = verdict
            .counterexample()
            .unwrap_or_else(|| panic!("modified TL2 must violate {property}"));
        assert!(!is_strictly_serializable(word) || !is_opaque(word));
        assert_eq!(word.len(), 6, "paper's w1 has length 6, got: {word}");
        // Shape of w1: two writes, two (inconsistently ordered) reads, two
        // commits.
        let commits = word.iter().filter(|s| s.kind.is_commit()).count();
        assert_eq!(commits, 2);
    }
}

/// The paper's exact w1 is rejected by the specs and produced by the
/// modified TL2.
#[test]
fn paper_w1_is_a_word_of_modified_tl2() {
    let w1: tm_modelcheck::lang::Word = "(w,2)1 (w,1)2 (r,2)2 (r,1)1 c2 c1".parse().unwrap();
    let modified = Tl2Tm::with_validation(2, 2, ValidationStyle::RValidateThenChkLock);
    let explored = tm_modelcheck::algorithms::most_general_nfa(&modified, 1_000_000);
    assert!(explored.nfa.accepts(w1.statements()));
    // ... while the correct TL2 refuses it.
    let tl2 = tm_modelcheck::algorithms::most_general_nfa(&Tl2Tm::new(2, 2), 1_000_000);
    assert!(!tl2.nfa.accepts(w1.statements()));
    // ... and the safe split order refuses it too.
    let safe = Tl2Tm::with_validation(2, 2, ValidationStyle::ChkLockThenRValidate);
    let safe = tm_modelcheck::algorithms::most_general_nfa(&safe, 1_000_000);
    assert!(!safe.nfa.accepts(w1.statements()));
}

/// Safe split order is actually safe (the §5.4 conclusion: rvalidate after
/// chklock, or both atomic).
#[test]
fn safe_split_tl2_is_opaque() {
    let tm = Tl2Tm::with_validation(2, 2, ValidationStyle::ChkLockThenRValidate);
    for property in SafetyProperty::all() {
        assert!(check_safety(&tm, property).holds(), "{property}");
    }
}

/// Paper Theorem 6 / Table 3: the complete liveness verdict matrix.
#[test]
fn theorem6_liveness_matrix() {
    let of = LivenessProperty::ObstructionFreedom;
    let lf = LivenessProperty::LivelockFreedom;
    let wf = LivenessProperty::WaitFreedom;

    let seq = SequentialTm::new(2, 1);
    assert!(!check_liveness(&seq, of).holds());
    assert!(!check_liveness(&seq, lf).holds());

    let tpl = TwoPhaseTm::new(2, 1);
    assert!(!check_liveness(&tpl, of).holds());
    assert!(!check_liveness(&tpl, lf).holds());

    let dstm = WithContentionManager::new(DstmTm::new(2, 1), AggressiveCm);
    assert!(check_liveness(&dstm, of).holds());
    assert!(!check_liveness(&dstm, lf).holds());
    assert!(!check_liveness(&dstm, wf).holds());

    let tl2 = WithContentionManager::new(Tl2Tm::new(2, 1), PoliteCm);
    assert!(!check_liveness(&tl2, of).holds());
    assert!(!check_liveness(&tl2, lf).holds());
}

/// Table 3 counterexample shapes: seq/2PL/TL2+polite loop on a single
/// abort (`w1 = a1`); DSTM+aggressive livelocks on mutual ownership
/// stealing (`w2`).
#[test]
fn table3_counterexample_shapes() {
    for verdict in [
        check_liveness(&SequentialTm::new(2, 1), LivenessProperty::ObstructionFreedom),
        check_liveness(&TwoPhaseTm::new(2, 1), LivenessProperty::ObstructionFreedom),
        check_liveness(
            &WithContentionManager::new(Tl2Tm::new(2, 1), PoliteCm),
            LivenessProperty::ObstructionFreedom,
        ),
    ] {
        let lasso = verdict.counterexample().expect("all fail OF");
        let word = lasso.to_word_lasso().expect("loop emits statements");
        // The whole observable loop is one abort by one thread.
        assert_eq!(word.cycle().len(), 1, "{}: {word}", verdict.tm_name);
        assert!(word.cycle()[0].kind.is_abort());
    }

    let dstm = WithContentionManager::new(DstmTm::new(2, 1), AggressiveCm);
    let verdict = check_liveness(&dstm, LivenessProperty::LivelockFreedom);
    let lasso = verdict.counterexample().expect("fails LF");
    let word = lasso.to_word_lasso().unwrap();
    // Both threads abort infinitely often, nobody commits.
    let mut abort_threads: Vec<usize> = word
        .cycle()
        .iter()
        .filter(|s| s.kind.is_abort())
        .map(|s| s.thread.index())
        .collect();
    abort_threads.sort_unstable();
    abort_threads.dedup();
    assert_eq!(abort_threads, vec![0, 1]);
    assert!(word.cycle().iter().all(|s| !s.kind.is_commit()));
}

/// Safety is contention-manager independent (`L(A_cm) ⊆ L(A)`): the
/// managed DSTM variants inherit opacity.
#[test]
fn managed_tms_inherit_safety() {
    let checker = SafetyChecker::new(SafetyProperty::Opacity, 2, 2);
    assert!(checker
        .check(&WithContentionManager::new(DstmTm::new(2, 2), AggressiveCm))
        .holds());
    assert!(checker
        .check(&WithContentionManager::new(DstmTm::new(2, 2), PoliteCm))
        .holds());
    assert!(checker
        .check(&WithContentionManager::new(
            Tl2Tm::new(2, 2),
            PoliteCm
        ))
        .holds());
}

/// Managed languages really are sublanguages: every word count at a small
/// depth confirms `L(A_cm) ⊆ L(A)`.
#[test]
fn managed_language_is_included_in_unmanaged() {
    use tm_modelcheck::automata::check_inclusion_antichain;
    let bare = tm_modelcheck::algorithms::most_general_nfa(&DstmTm::new(2, 1), 100_000);
    let managed = tm_modelcheck::algorithms::most_general_nfa(
        &WithContentionManager::new(DstmTm::new(2, 1), AggressiveCm),
        100_000,
    );
    assert!(check_inclusion_antichain(&managed.nfa, &bare.nfa).holds());
    // The reverse fails: aggressive removes self-aborts.
    assert!(!check_inclusion_antichain(&bare.nfa, &managed.nfa).holds());
}
