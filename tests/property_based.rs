//! Property-based tests (proptest) over random transaction histories:
//! invariants of the reference semantics, the specifications, and the
//! checkers.

use proptest::prelude::*;

use tm_modelcheck::automata::{
    check_inclusion, check_inclusion_antichain, check_inclusion_antichain_reference,
    check_inclusion_reference, Alphabet as LetterAlphabet, BitSet, Dfa, LetterId, Nfa,
};
use tm_modelcheck::lang::{
    is_opaque, is_opaque_brute_force, is_strictly_serializable,
    is_strictly_serializable_brute_force, is_sequential, opacity_witness,
    serialization_witness, strictly_equivalent, transactions, SafetyProperty, Statement,
    StatementKind, ThreadId, VarId, Word,
};
use tm_modelcheck::spec::{DetSpec, NondetSpec};

/// A random statement over (2 threads, 2 variables).
fn arb_statement() -> impl Strategy<Value = Statement> {
    (0usize..2, 0usize..6).prop_map(|(t, k)| {
        let kind = match k {
            0 => StatementKind::Read(VarId::new(0)),
            1 => StatementKind::Read(VarId::new(1)),
            2 => StatementKind::Write(VarId::new(0)),
            3 => StatementKind::Write(VarId::new(1)),
            4 => StatementKind::Commit,
            _ => StatementKind::Abort,
        };
        Statement::new(kind, ThreadId::new(t))
    })
}

fn arb_word(max_len: usize) -> impl Strategy<Value = Word> {
    proptest::collection::vec(arb_statement(), 0..max_len).prop_map(Word::from)
}

proptest! {
    /// π_op ⊆ π_ss (§2).
    #[test]
    fn opacity_implies_strict_serializability(w in arb_word(10)) {
        if is_opaque(&w) {
            prop_assert!(is_strictly_serializable(&w));
        }
    }

    /// The conflict-graph checkers agree with the brute-force
    /// (definition-level) search.
    #[test]
    fn graph_checker_equals_brute_force(w in arb_word(8)) {
        prop_assume!(transactions(&w).len() <= 6);
        prop_assert_eq!(
            is_strictly_serializable(&w),
            is_strictly_serializable_brute_force(&w)
        );
        prop_assert_eq!(is_opaque(&w), is_opaque_brute_force(&w));
    }

    /// Safety is prefix-closed: a violating prefix never heals.
    #[test]
    fn safety_is_prefix_closed(w in arb_word(10)) {
        for property in SafetyProperty::all() {
            let mut seen_violation = false;
            for len in 0..=w.len() {
                let prefix = w.prefix(len);
                if seen_violation {
                    prop_assert!(!property.holds(&prefix));
                } else if !property.holds(&prefix) {
                    seen_violation = true;
                }
            }
        }
    }

    /// Serialization witnesses are sound: sequential and strictly
    /// equivalent to com(w) (resp. w).
    #[test]
    fn witnesses_are_sound(w in arb_word(8)) {
        if let Some(witness) = serialization_witness(&w) {
            prop_assert!(is_sequential(&witness));
            prop_assert!(strictly_equivalent(&w.com(), &witness));
        } else {
            prop_assert!(!is_strictly_serializable(&w));
        }
        if let Some(witness) = opacity_witness(&w) {
            prop_assert!(is_sequential(&witness));
            prop_assert!(strictly_equivalent(&w, &witness));
        } else {
            prop_assert!(!is_opaque(&w));
        }
    }

    /// Strict equivalence is reflexive, and stable under the identity.
    #[test]
    fn strict_equivalence_reflexive(w in arb_word(8)) {
        prop_assert!(strictly_equivalent(&w, &w));
    }

    /// The deterministic specification decides exactly the reference
    /// property (random-word slice of Theorem 2).
    #[test]
    fn det_spec_matches_oracle(w in arb_word(9)) {
        for property in SafetyProperty::all() {
            let spec = DetSpec::new(property, 2, 2);
            prop_assert_eq!(
                spec.accepts_word(&w),
                property.holds(&w),
                "{} on {}", property, &w
            );
        }
    }

    /// Sequential words satisfy both properties.
    #[test]
    fn sequential_words_are_opaque(w in arb_word(9)) {
        prop_assume!(is_sequential(&w));
        prop_assert!(is_opaque(&w));
        prop_assert!(is_strictly_serializable(&w));
    }

    /// Aborting every open transaction at the end preserves opacity.
    #[test]
    fn closing_aborts_preserve_opacity(w in arb_word(8)) {
        prop_assume!(is_opaque(&w));
        let mut closed = w.clone();
        for x in transactions(&w) {
            if x.is_unfinished() {
                closed.push(Statement::new(StatementKind::Abort, x.thread()));
            }
        }
        prop_assert!(is_opaque(&closed));
    }
}

const NFA_ALPHABET: [char; 3] = ['a', 'b', 'c'];

/// A random NFA over {a, b, c} with ≤ 6 states, ≤ 14 transitions (25% ε),
/// state 0 initial — the automaton shape also used in
/// `tests/automata_laws.rs`.
fn arb_nfa() -> impl Strategy<Value = Nfa<char>> {
    (
        1usize..=6,
        proptest::collection::vec((0usize..6, 0usize..4, 0usize..6), 0..14),
    )
        .prop_map(|(states, edges)| {
            let mut nfa = Nfa::new();
            for _ in 0..states {
                nfa.add_state();
            }
            nfa.set_initial(0);
            for (from, label, to) in edges {
                let (from, to) = (from % states, to % states);
                let label = if label == 3 {
                    None
                } else {
                    Some(NFA_ALPHABET[label])
                };
                nfa.add_transition(from, label, to);
            }
            nfa
        })
}

proptest! {
    /// The compiled CSR representation accepts exactly the words the
    /// uncompiled automaton accepts (letters outside the compiled
    /// alphabet reject, as do letters missing from the automaton).
    #[test]
    fn compiled_nfa_agrees_on_accepts(
        (nfa, word) in (arb_nfa(), proptest::collection::vec(0usize..3, 0..6))
    ) {
        let mut alphabet = LetterAlphabet::new();
        let compiled = nfa.compile(&mut alphabet);
        let chars: Vec<char> = word.iter().map(|&i| NFA_ALPHABET[i]).collect();
        // Letters the automaton never uses are not interned: give them an
        // id beyond the compiled alphabet, which the compiled automaton
        // rejects just like the uncompiled one rejects the raw letter.
        let ids: Vec<LetterId> = chars
            .iter()
            .map(|l| alphabet.get(l).unwrap_or(u32::MAX - 1))
            .collect();
        prop_assert_eq!(compiled.accepts(&ids), nfa.accepts(&chars), "{:?}", chars);
    }

    /// `CompiledNfa::post` (per-letter CSR slice walk) computes the same
    /// successor sets as the full-edge-scan `Nfa::post`, from the initial
    /// closure and from its iterated posts.
    #[test]
    fn compiled_nfa_agrees_on_post(nfa in arb_nfa()) {
        let mut alphabet = LetterAlphabet::new();
        let compiled = nfa.compile(&mut alphabet);
        prop_assert_eq!(
            nfa.initial_closure().iter().collect::<Vec<_>>(),
            compiled.initial_closure().iter().collect::<Vec<_>>()
        );
        let mut frontiers = vec![nfa.initial_closure()];
        for _ in 0..2 {
            let mut next = Vec::new();
            for frontier in &frontiers {
                for letter in NFA_ALPHABET {
                    let reference = nfa.post(frontier, &letter);
                    let fast = match alphabet.get(&letter) {
                        Some(id) => compiled.post(frontier, id),
                        None => BitSet::new(compiled.num_states()),
                    };
                    prop_assert_eq!(
                        reference.iter().collect::<Vec<_>>(),
                        fast.iter().collect::<Vec<_>>(),
                        "letter {}", letter
                    );
                    next.push(reference);
                }
            }
            frontiers = next;
        }
    }

    /// The index-based inclusion checks return results identical to the
    /// seed (label-hashing) implementations — verdict, counterexample
    /// word, and product-state count.
    #[test]
    fn inclusion_checks_agree_with_seed((left, right) in (arb_nfa(), arb_nfa())) {
        let dfa = Dfa::determinize(&right, NFA_ALPHABET.to_vec());
        prop_assert_eq!(
            check_inclusion(&left, &dfa),
            check_inclusion_reference(&left, &dfa)
        );
        prop_assert_eq!(
            check_inclusion_antichain(&left, &right),
            check_inclusion_antichain_reference(&left, &right)
        );
    }
}

/// The index-based `check_inclusion` reproduces the seed implementation
/// bit-for-bit — verdict, shortest counterexample word, and explored
/// product size — on every Table 2 TM/property pair.
#[test]
fn table2_inclusion_matches_seed_implementation() {
    // The roster depends only on the instance size, not the property.
    let roster = tm_bench::table2_roster();
    for property in SafetyProperty::all() {
        let (spec, _) = DetSpec::new(property, 2, 2).to_dfa(20_000_000);
        let compiled = spec.compile();
        for (name, nfa, _) in &roster {
            let fast = check_inclusion(nfa, &spec);
            let seed = check_inclusion_reference(nfa, &spec);
            assert_eq!(fast, seed, "{property} / {name}");
            let precompiled =
                tm_modelcheck::automata::check_inclusion_compiled(nfa, &compiled);
            assert_eq!(precompiled, seed, "{property} / {name} (precompiled)");
            if let Some(word) = seed.counterexample() {
                let word: Word = word.iter().copied().collect();
                assert!(!property.holds(&word), "{property} / {name}: {word}");
            }
        }
    }
}

/// Non-proptest: membership in the nondeterministic spec agrees with the
/// oracle on a fixed pseudo-random sample (the NFA is too costly to build
/// per proptest case).
#[test]
fn nondet_spec_matches_oracle_on_sample() {
    let mut state = 0x9e3779b97f4a7c15u64;
    let mut next = |bound: usize| {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        ((state >> 33) as usize) % bound
    };
    for property in SafetyProperty::all() {
        let spec = NondetSpec::new(property, 2, 2);
        let nfa = spec.to_nfa(2_000_000).nfa;
        for _ in 0..2_000 {
            let len = next(10);
            let w = tm_modelcheck::lang::random_word(
                tm_modelcheck::lang::Alphabet::new(2, 2),
                len,
                &mut next,
            );
            assert_eq!(
                nfa.accepts(w.statements()),
                property.holds(&w),
                "{property} on {w}"
            );
        }
    }
}
