//! Property-based tests (proptest) over random transaction histories:
//! invariants of the reference semantics, the specifications, and the
//! checkers.

use proptest::prelude::*;

use tm_modelcheck::lang::{
    is_opaque, is_opaque_brute_force, is_strictly_serializable,
    is_strictly_serializable_brute_force, is_sequential, opacity_witness,
    serialization_witness, strictly_equivalent, transactions, SafetyProperty, Statement,
    StatementKind, ThreadId, VarId, Word,
};
use tm_modelcheck::spec::{DetSpec, NondetSpec};

/// A random statement over (2 threads, 2 variables).
fn arb_statement() -> impl Strategy<Value = Statement> {
    (0usize..2, 0usize..6).prop_map(|(t, k)| {
        let kind = match k {
            0 => StatementKind::Read(VarId::new(0)),
            1 => StatementKind::Read(VarId::new(1)),
            2 => StatementKind::Write(VarId::new(0)),
            3 => StatementKind::Write(VarId::new(1)),
            4 => StatementKind::Commit,
            _ => StatementKind::Abort,
        };
        Statement::new(kind, ThreadId::new(t))
    })
}

fn arb_word(max_len: usize) -> impl Strategy<Value = Word> {
    proptest::collection::vec(arb_statement(), 0..max_len).prop_map(Word::from)
}

proptest! {
    /// π_op ⊆ π_ss (§2).
    #[test]
    fn opacity_implies_strict_serializability(w in arb_word(10)) {
        if is_opaque(&w) {
            prop_assert!(is_strictly_serializable(&w));
        }
    }

    /// The conflict-graph checkers agree with the brute-force
    /// (definition-level) search.
    #[test]
    fn graph_checker_equals_brute_force(w in arb_word(8)) {
        prop_assume!(transactions(&w).len() <= 6);
        prop_assert_eq!(
            is_strictly_serializable(&w),
            is_strictly_serializable_brute_force(&w)
        );
        prop_assert_eq!(is_opaque(&w), is_opaque_brute_force(&w));
    }

    /// Safety is prefix-closed: a violating prefix never heals.
    #[test]
    fn safety_is_prefix_closed(w in arb_word(10)) {
        for property in SafetyProperty::all() {
            let mut seen_violation = false;
            for len in 0..=w.len() {
                let prefix = w.prefix(len);
                if seen_violation {
                    prop_assert!(!property.holds(&prefix));
                } else if !property.holds(&prefix) {
                    seen_violation = true;
                }
            }
        }
    }

    /// Serialization witnesses are sound: sequential and strictly
    /// equivalent to com(w) (resp. w).
    #[test]
    fn witnesses_are_sound(w in arb_word(8)) {
        if let Some(witness) = serialization_witness(&w) {
            prop_assert!(is_sequential(&witness));
            prop_assert!(strictly_equivalent(&w.com(), &witness));
        } else {
            prop_assert!(!is_strictly_serializable(&w));
        }
        if let Some(witness) = opacity_witness(&w) {
            prop_assert!(is_sequential(&witness));
            prop_assert!(strictly_equivalent(&w, &witness));
        } else {
            prop_assert!(!is_opaque(&w));
        }
    }

    /// Strict equivalence is reflexive, and stable under the identity.
    #[test]
    fn strict_equivalence_reflexive(w in arb_word(8)) {
        prop_assert!(strictly_equivalent(&w, &w));
    }

    /// The deterministic specification decides exactly the reference
    /// property (random-word slice of Theorem 2).
    #[test]
    fn det_spec_matches_oracle(w in arb_word(9)) {
        for property in SafetyProperty::all() {
            let spec = DetSpec::new(property, 2, 2);
            prop_assert_eq!(
                spec.accepts_word(&w),
                property.holds(&w),
                "{} on {}", property, &w
            );
        }
    }

    /// Sequential words satisfy both properties.
    #[test]
    fn sequential_words_are_opaque(w in arb_word(9)) {
        prop_assume!(is_sequential(&w));
        prop_assert!(is_opaque(&w));
        prop_assert!(is_strictly_serializable(&w));
    }

    /// Aborting every open transaction at the end preserves opacity.
    #[test]
    fn closing_aborts_preserve_opacity(w in arb_word(8)) {
        prop_assume!(is_opaque(&w));
        let mut closed = w.clone();
        for x in transactions(&w) {
            if x.is_unfinished() {
                closed.push(Statement::new(StatementKind::Abort, x.thread()));
            }
        }
        prop_assert!(is_opaque(&closed));
    }
}

/// Non-proptest: membership in the nondeterministic spec agrees with the
/// oracle on a fixed pseudo-random sample (the NFA is too costly to build
/// per proptest case).
#[test]
fn nondet_spec_matches_oracle_on_sample() {
    let mut state = 0x9e3779b97f4a7c15u64;
    let mut next = |bound: usize| {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        ((state >> 33) as usize) % bound
    };
    for property in SafetyProperty::all() {
        let spec = NondetSpec::new(property, 2, 2);
        let nfa = spec.to_nfa(2_000_000).nfa;
        for _ in 0..2_000 {
            let len = next(10);
            let w = tm_modelcheck::lang::random_word(
                tm_modelcheck::lang::Alphabet::new(2, 2),
                len,
                &mut next,
            );
            assert_eq!(
                nfa.accepts(w.statements()),
                property.holds(&w),
                "{property} on {w}"
            );
        }
    }
}
