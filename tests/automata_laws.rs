//! Property-based validation of the automata substrate on random
//! prefix-closed automata: determinization and minimization preserve the
//! language, and the antichain inclusion check agrees with the
//! determinize-then-product method.

use proptest::prelude::*;

use tm_modelcheck::automata::{
    check_equivalence_antichain, check_inclusion, check_inclusion_antichain, Dfa, Nfa,
};

const ALPHABET: [char; 3] = ['a', 'b', 'c'];

/// A random NFA over {a, b, c} with ≤ 6 states, ≤ 14 transitions (10% ε),
/// state 0 initial.
fn arb_nfa() -> impl Strategy<Value = Nfa<char>> {
    (
        1usize..=6,
        proptest::collection::vec((0usize..6, 0usize..4, 0usize..6), 0..14),
    )
        .prop_map(|(states, edges)| {
            let mut nfa = Nfa::new();
            for _ in 0..states {
                nfa.add_state();
            }
            nfa.set_initial(0);
            for (from, label, to) in edges {
                let (from, to) = (from % states, to % states);
                let label = if label == 3 {
                    None
                } else {
                    Some(ALPHABET[label])
                };
                nfa.add_transition(from, label, to);
            }
            nfa
        })
}

/// All words over {a,b,c} up to length `n`.
fn words_up_to(n: usize) -> Vec<Vec<char>> {
    let mut out: Vec<Vec<char>> = vec![Vec::new()];
    let mut frontier = vec![Vec::new()];
    for _ in 0..n {
        let mut next = Vec::new();
        for w in &frontier {
            for &l in &ALPHABET {
                let mut w2 = w.clone();
                w2.push(l);
                out.push(w2.clone());
                next.push(w2);
            }
        }
        frontier = next;
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Subset-construction determinization preserves the language.
    #[test]
    fn determinization_preserves_language(nfa in arb_nfa()) {
        let dfa = Dfa::determinize(&nfa, ALPHABET.to_vec());
        for w in words_up_to(4) {
            prop_assert_eq!(nfa.accepts(&w), dfa.accepts(&w), "{:?}", w);
        }
    }

    /// Minimization preserves the language and never grows the automaton.
    #[test]
    fn minimization_preserves_language(nfa in arb_nfa()) {
        let dfa = Dfa::determinize(&nfa, ALPHABET.to_vec());
        let min = dfa.minimize();
        prop_assert!(min.num_states() <= dfa.num_states().max(1));
        for w in words_up_to(4) {
            prop_assert_eq!(dfa.accepts(&w), min.accepts(&w), "{:?}", w);
        }
    }

    /// Minimization is idempotent.
    #[test]
    fn minimization_is_idempotent(nfa in arb_nfa()) {
        let min = Dfa::determinize(&nfa, ALPHABET.to_vec()).minimize();
        prop_assert_eq!(min.minimize().num_states(), min.num_states());
    }

    /// The antichain inclusion check agrees with the classical
    /// determinize-then-product check, in both directions.
    #[test]
    fn antichain_agrees_with_product((left, right) in (arb_nfa(), arb_nfa())) {
        let right_dfa = Dfa::determinize(&right, ALPHABET.to_vec());
        let classical = check_inclusion(&left, &right_dfa);
        let antichain = check_inclusion_antichain(&left, &right);
        prop_assert_eq!(classical.holds(), antichain.holds());
        if let (Some(c), Some(a)) = (classical.counterexample(), antichain.counterexample()) {
            // Both find shortest counterexamples (BFS), so lengths agree.
            prop_assert_eq!(c.len(), a.len());
            prop_assert!(left.accepts(a));
            prop_assert!(!right.accepts(a));
        }
    }

    /// Equivalence is reflexive, and an automaton is equivalent to its
    /// determinization and minimization.
    #[test]
    fn equivalence_with_canonical_forms(nfa in arb_nfa()) {
        let dfa = Dfa::determinize(&nfa, ALPHABET.to_vec());
        prop_assert!(check_equivalence_antichain(&nfa, &nfa).holds());
        prop_assert!(check_equivalence_antichain(&nfa, &dfa.to_nfa()).holds());
        prop_assert!(
            check_equivalence_antichain(&nfa, &dfa.minimize().to_nfa()).holds()
        );
    }

    /// Counterexamples returned by inclusion checks are genuine.
    #[test]
    fn counterexamples_are_genuine((left, right) in (arb_nfa(), arb_nfa())) {
        let right_dfa = Dfa::determinize(&right, ALPHABET.to_vec());
        if let Some(w) = check_inclusion(&left, &right_dfa).counterexample() {
            prop_assert!(left.accepts(w));
            prop_assert!(!right_dfa.accepts(w));
        }
    }
}
