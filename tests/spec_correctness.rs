//! Integration tests establishing the correctness of the TM
//! specifications (paper Theorems 2 and 3) by cross-validation:
//!
//! * bounded-exhaustive agreement with the definition-level reference
//!   checkers of `tm-lang` (Theorem 2);
//! * antichain language-equivalence of the nondeterministic and
//!   deterministic specifications (Theorem 3), including the
//!   independently constructed canonical (determinized + minimized)
//!   automaton;
//! * the exact state counts the paper reports for the deterministic
//!   specifications.

use tm_modelcheck::automata::{check_equivalence_antichain, Dfa};
use tm_modelcheck::lang::{Alphabet, SafetyProperty};
use tm_modelcheck::spec::{
    canonical_dfa, cross_validate, spec_alphabet, DetSpec, NondetSpec,
};

const MAX: usize = 2_000_000;

/// Theorem 2 at (2,1): both specifications agree with the oracle on every
/// word up to length 8.
#[test]
fn specs_match_oracle_exhaustively_2_1() {
    for property in SafetyProperty::all() {
        let alphabet = Alphabet::new(2, 1);
        let nd = NondetSpec::new(property, 2, 1).to_nfa(MAX);
        assert_eq!(cross_validate(&nd.nfa, property, alphabet, 8), None, "{property} nondet");
        let (det, _) = DetSpec::new(property, 2, 1).to_dfa(MAX);
        assert_eq!(
            cross_validate(&det.to_nfa(), property, alphabet, 8),
            None,
            "{property} det"
        );
    }
}

/// Theorem 2 at (2,2): agreement with the oracle on every word up to
/// length 5 (length 6 runs in the benches).
#[test]
fn specs_match_oracle_exhaustively_2_2() {
    for property in SafetyProperty::all() {
        let alphabet = Alphabet::new(2, 2);
        let nd = NondetSpec::new(property, 2, 2).to_nfa(MAX);
        assert_eq!(cross_validate(&nd.nfa, property, alphabet, 5), None, "{property} nondet");
        let (det, _) = DetSpec::new(property, 2, 2).to_dfa(MAX);
        assert_eq!(
            cross_validate(&det.to_nfa(), property, alphabet, 5),
            None,
            "{property} det"
        );
    }
}

/// Theorem 2 beyond the reduction bound: the parametric specifications
/// stay correct at (3,1) — evidence that nothing in the construction is
/// 2-thread-specific.
#[test]
fn specs_match_oracle_exhaustively_3_1() {
    for property in SafetyProperty::all() {
        let alphabet = Alphabet::new(3, 1);
        let nd = NondetSpec::new(property, 3, 1).to_nfa(MAX);
        assert_eq!(cross_validate(&nd.nfa, property, alphabet, 6), None, "{property} nondet");
        let (det, _) = DetSpec::new(property, 3, 1).to_dfa(MAX);
        assert_eq!(
            cross_validate(&det.to_nfa(), property, alphabet, 6),
            None,
            "{property} det"
        );
    }
}

/// Theorem 3: `L(Σ_π) = L(Σᵈ_π)` for both properties at (2,2), via the
/// antichain algorithm.
#[test]
fn theorem3_equivalence_2_2() {
    for property in SafetyProperty::all() {
        let nondet = NondetSpec::new(property, 2, 2).to_nfa(MAX);
        let (det, _) = DetSpec::new(property, 2, 2).to_dfa(MAX);
        let result = check_equivalence_antichain(&nondet.nfa, &det.to_nfa());
        assert!(result.holds(), "{property}: {result:?}");
    }
}

/// The canonical automaton (determinize + minimize of the nondet spec) is
/// language-equal to the Algorithm 6 automaton — two independent
/// constructions of the same language.
#[test]
fn canonical_equals_algorithm6() {
    for property in SafetyProperty::all() {
        for (n, k) in [(2usize, 1usize), (2, 2)] {
            let canon = canonical_dfa(property, n, k, MAX);
            let (det, _) = DetSpec::new(property, n, k).to_dfa(MAX);
            let result = check_equivalence_antichain(&canon.to_nfa(), &det.to_nfa());
            assert!(result.holds(), "{property} ({n},{k})");
        }
    }
}

/// §5.3: the deterministic specifications for (2,2) have **exactly** the
/// state counts the paper reports — 3520 for strict serializability and
/// 2272 for opacity.
#[test]
fn paper_det_spec_state_counts_match_exactly() {
    let (ss, _) = DetSpec::new(SafetyProperty::StrictSerializability, 2, 2).to_dfa(MAX);
    assert_eq!(ss.num_states(), 3520);
    let (op, _) = DetSpec::new(SafetyProperty::Opacity, 2, 2).to_dfa(MAX);
    assert_eq!(op.num_states(), 2272);
}

/// The nondeterministic specifications land in the paper's ballpark
/// (12345 / 9202; exact counts depend on ε-transition encoding).
#[test]
fn nondet_spec_state_counts_ballpark() {
    let ss = NondetSpec::new(SafetyProperty::StrictSerializability, 2, 2).to_nfa(MAX);
    assert!(
        (8_000..20_000).contains(&ss.num_states()),
        "ss: {}",
        ss.num_states()
    );
    let op = NondetSpec::new(SafetyProperty::Opacity, 2, 2).to_nfa(MAX);
    assert!(
        (6_000..16_000).contains(&op.num_states()),
        "op: {}",
        op.num_states()
    );
}

/// π_op ⊆ π_ss (§2): the opacity language is included in the strict
/// serializability language.
#[test]
fn opacity_implies_strict_serializability_as_languages() {
    use tm_modelcheck::automata::check_inclusion;
    let op = NondetSpec::new(SafetyProperty::Opacity, 2, 2).to_nfa(MAX);
    let (ss, _) = DetSpec::new(SafetyProperty::StrictSerializability, 2, 2).to_dfa(MAX);
    assert!(check_inclusion(&op.nfa, &ss).holds());
    // The converse fails: Fig. 2(a) is SS but not opaque.
    let (opd, _) = DetSpec::new(SafetyProperty::Opacity, 2, 2).to_dfa(MAX);
    let ssn = NondetSpec::new(SafetyProperty::StrictSerializability, 2, 2).to_nfa(MAX);
    assert!(!check_inclusion(&ssn.nfa, &opd).holds());
}

/// Subset-determinization blows up the nondeterministic specification
/// (the paper: "too large to be automatically determinized"), while
/// minimization shrinks far below the Algorithm 6 automaton.
#[test]
fn determinization_size_comparison() {
    let property = SafetyProperty::Opacity;
    let nondet = NondetSpec::new(property, 2, 2).to_nfa(MAX);
    let subset = Dfa::determinize(&nondet.nfa, spec_alphabet(2, 2));
    let minimal = subset.minimize();
    let (det, _) = DetSpec::new(property, 2, 2).to_dfa(MAX);
    assert!(minimal.num_states() <= det.num_states());
    assert!(det.num_states() <= subset.num_states());
}
