//! Differential conformance harness for the liveness checker pair: the
//! compiled engine (`check_liveness` / `check_liveness_threads`, masked
//! CSR passes over one run graph) must agree with the seed reference
//! (`check_liveness_reference`, cloned filtered subgraphs) on **every**
//! Table 3 TM × contention-manager × property combination — verdict,
//! run-level lasso, word-level lasso projection, and Table 3 cycle
//! notation — and must be identical at every worker-pool size.
//!
//! A seeded random-graph fuzz additionally pins the engine's mask-filtered
//! Tarjan to the reference cloned-subgraph SCC decomposition on
//! adversarial shapes, component indices included.

use rand::{rngs::StdRng, Rng, SeedableRng};

use tm_bench::liveness_roster;
use tm_modelcheck::automata::{
    strongly_connected_components, CompiledRunGraph, EdgeFilter, LabelClass, LabeledGraph,
    LiveScratch, LoopQuery, LoopSelection, RunGraphSource, MASK_ABORT, MASK_ALL_THREADS,
    MASK_COMMIT,
};
use tm_modelcheck::checker::{LivenessVerdict, Verifier};
use tm_modelcheck::lang::LivenessProperty;

/// Asserts engine ≡ reference on one verdict pair: outcome, state count,
/// run-level lasso, word projection, and Table 3 notation.
fn assert_conforms(engine: &LivenessVerdict, reference: &LivenessVerdict, context: &str) {
    assert_eq!(engine.holds(), reference.holds(), "{context}: verdict");
    assert_eq!(
        engine.tm_states, reference.tm_states,
        "{context}: run-graph state count"
    );
    match (engine.counterexample(), reference.counterexample()) {
        (None, None) => {}
        (Some(e), Some(r)) => {
            assert_eq!(e, r, "{context}: run-level lasso");
            assert_eq!(
                e.to_word_lasso(),
                r.to_word_lasso(),
                "{context}: word-level projection"
            );
            assert_eq!(
                e.cycle_notation(),
                r.cycle_notation(),
                "{context}: Table 3 notation"
            );
        }
        (e, r) => panic!("{context}: engine {e:?} vs reference {r:?}"),
    }
}

/// All Table 3 TM × manager × property combinations at (2, 1): the engine
/// agrees with the seed reference at pool sizes 1 and 4, and every
/// violation is confirmed by the word-level property oracle.
#[test]
fn table3_engine_matches_reference_at_every_pool_size() {
    for case in liveness_roster(2, 1) {
        for property in LivenessProperty::all() {
            let reference = case.check_reference(property);
            if let Some(lasso) = reference.counterexample() {
                let word = lasso.to_word_lasso().expect("TM loops emit statements");
                assert!(
                    !property.holds(&word),
                    "{} / {property}: oracle accepts {word}",
                    case.name
                );
            }
            for threads in [1usize, 4] {
                let engine = case.check(property, threads);
                let context = format!("{} / {property} (pool {threads})", case.name);
                assert_conforms(&engine, &reference, &context);
            }
        }
    }
}

/// Session reuse: a [`Verifier`] answering all three liveness properties
/// of a TM from **one** cached run graph must yield verdicts, lassos,
/// word projections, and Table 3 cycle notations bit-identical to three
/// one-shot `check_liveness_threads` calls — at pool sizes 1 and 4, over
/// the full (2, 1) TM × manager roster.
#[test]
fn session_reuse_matches_one_shot_at_every_pool_size() {
    for pool in [1usize, 4] {
        for case in liveness_roster(2, 1) {
            let mut verifier = Verifier::new(2, 1).pool_size(pool);
            for property in LivenessProperty::all() {
                let session = case
                    .check_session(&mut verifier, property)
                    .into_liveness()
                    .expect("liveness query");
                let one_shot = case.check(property, pool);
                let context =
                    format!("{} / {property} (session, pool {pool})", case.name);
                assert_conforms(&session, &one_shot, &context);
            }
            assert_eq!(
                verifier.run_graph_builds(),
                1,
                "{}: three properties must share one compiled run graph",
                case.name
            );
        }
    }
}

/// The (3, 1) instance exercises the 7-subset livelock fan-out and
/// 3-thread masks; the reference still copes at this size, so pin the
/// engine to it here too.
#[test]
fn three_thread_instance_matches_reference() {
    for case in liveness_roster(3, 1) {
        for property in LivenessProperty::all() {
            let reference = case.check_reference(property);
            for threads in [1usize, 4] {
                let engine = case.check(property, threads);
                let context = format!("{} (3,1) / {property} (pool {threads})", case.name);
                assert_conforms(&engine, &reference, &context);
            }
        }
    }
}

// ---------------------------------------------------------------------
// Mask-filtered Tarjan fuzz: random graphs, random filters — the masked
// decomposition must equal the reference (clone the filtered subgraph,
// run the original Tarjan) exactly, component indices included.

/// A random-graph label carrying its own class bits.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
struct FuzzLabel {
    id: u16,
    thread: u8,
    commit: bool,
    abort: bool,
}

/// Explicit adjacency as a [`RunGraphSource`] (state 0 initial; only the
/// part reachable from it is compiled, mirroring real run graphs).
struct FuzzSource {
    succ: Vec<Vec<(FuzzLabel, u32)>>,
}

impl RunGraphSource for FuzzSource {
    type State = u32;
    type Label = FuzzLabel;

    fn initial_state(&self) -> u32 {
        0
    }

    fn successors(&self, state: &u32, out: &mut Vec<(FuzzLabel, u32)>) {
        out.extend(self.succ[*state as usize].iter().copied());
    }

    fn classify(&self, label: &FuzzLabel) -> LabelClass {
        LabelClass {
            thread: label.thread as usize,
            is_commit: label.commit,
            is_abort: label.abort,
            emits_statement: label.commit || label.abort,
        }
    }
}

fn random_source(rng: &mut StdRng) -> FuzzSource {
    let states = 1 + rng.gen_range(0..12);
    let mut succ: Vec<Vec<(FuzzLabel, u32)>> = (0..states).map(|_| Vec::new()).collect();
    let edges = rng.gen_range(0..40);
    for id in 0..edges {
        let from = rng.gen_range(0..states);
        let to = rng.gen_range(0..states) as u32;
        let label = FuzzLabel {
            id: id as u16,
            thread: rng.gen_range(0..3) as u8,
            commit: rng.gen_range(0..4) == 0,
            abort: rng.gen_range(0..4) == 0,
        };
        succ[from].push((label, to));
    }
    FuzzSource { succ }
}

#[test]
fn masked_tarjan_matches_cloned_subgraph_reference_on_random_graphs() {
    let filters = [
        EdgeFilter { keep_any: MASK_ALL_THREADS, forbid_all: 0 },
        EdgeFilter { keep_any: MASK_ALL_THREADS, forbid_all: MASK_COMMIT },
        EdgeFilter { keep_any: 0b001, forbid_all: MASK_COMMIT },
        EdgeFilter { keep_any: 0b011, forbid_all: MASK_COMMIT },
        EdgeFilter { keep_any: 0b110, forbid_all: MASK_ABORT },
        EdgeFilter { keep_any: MASK_ALL_THREADS, forbid_all: MASK_COMMIT | 0b010 },
    ];
    let mut scratch = LiveScratch::default();
    for seed in 0..64u64 {
        let mut rng = StdRng::seed_from_u64(0x5cc0_0000 + seed);
        let source = random_source(&mut rng);
        let (graph, _) = CompiledRunGraph::build(&source, 10_000).expect("fuzz graph in bounds");
        // Materialize the engine's reachable subgraph once, then compare
        // decompositions per filter.
        let mut labeled: LabeledGraph<FuzzLabel> = LabeledGraph::new(graph.num_states());
        for (from, label, to) in graph.edges() {
            labeled.add_edge(from, *label, to);
        }
        for filter in filters {
            graph.sccs_masked(filter, &mut scratch);
            let filtered =
                labeled.filtered(|_, l, _| filter.keeps(source.classify(l).mask()));
            let reference = strongly_connected_components(&filtered);
            assert_eq!(
                scratch.num_components(),
                reference.count(),
                "seed {seed}, {filter:?}: component count"
            );
            for v in 0..graph.num_states() {
                assert_eq!(
                    scratch.component_of(v),
                    reference.component_of(v),
                    "seed {seed}, {filter:?}: state {v}"
                );
            }
        }
    }
}

/// The fan-out must pick the same (first-in-order) violation at every
/// pool size, on random graphs with randomized query lists — beyond the
/// structured queries `check_liveness` generates.
#[test]
fn random_query_fanout_is_pool_size_independent() {
    for seed in 0..24u64 {
        let mut rng = StdRng::seed_from_u64(0xfa40_0000 + seed);
        let source = random_source(&mut rng);
        let (graph, _) = CompiledRunGraph::build(&source, 10_000).expect("fuzz graph in bounds");
        let queries: Vec<LoopQuery> = (0..6)
            .map(|_| {
                let t = rng.gen_range(0..3);
                let selection = if rng.gen_range(0..2) == 0 {
                    LoopSelection::FirstEdge
                } else {
                    LoopSelection::FirstComponent
                };
                LoopQuery {
                    filter: EdgeFilter {
                        keep_any: 1 << t,
                        forbid_all: MASK_COMMIT,
                    },
                    required: vec![MASK_ABORT | (1 << t)],
                    selection,
                }
            })
            .collect();
        let expected = graph.find_first_loop(&queries, 1);
        for threads in [2usize, 3, 8] {
            let got = graph.find_first_loop(&queries, threads);
            assert_eq!(got, expected, "seed {seed}, pool {threads}");
        }
    }
}
